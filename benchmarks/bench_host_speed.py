#!/usr/bin/env python3
"""Host-speed benchmark: wall-clock instructions/sec of the simulator.

Every number in the paper reproduction comes out of the interpreter's
fetch/decode/execute loop, so *host* speed bounds how large a workload
sweep the suite can run.  This harness tracks that speed over time:

* ``micro_alu``      — dense ALU loop on a stock core (the pure
                       interpreter fast path, no bus traffic)
* ``micro_memory``   — load/store loop on a stock core (bus traffic
                       with an empty interposer chain)
* ``macro_unprot``   — the Table "application-level overhead"
                       producer/consumer pipeline, unprotected
* ``macro_umpu``     — the same pipeline on the UMPU machine (MMC +
                       safe-stack + tracker attached: the instrumented
                       bus path)

Protocol: build each workload once, run ``--warmup`` untimed passes,
then ``--repeats`` timed passes and report the **median**
instructions/sec.  Simulated cycle counts are deterministic and
asserted unchanged across passes — this harness can never observe a
simulation-semantics change, only host speed.

Run::

    PYTHONPATH=src python benchmarks/bench_host_speed.py
    PYTHONPATH=src python benchmarks/bench_host_speed.py --quick \\
        --out BENCH_host.json --compare benchmarks/BENCH_host.json

``--compare`` exits non-zero if any workload's instructions/sec fell
more than ``--max-regression`` (default 30%) below the baseline file,
which is how CI guards the perf trajectory (see docs/performance.md).
"""

import argparse
import json
import os
import platform
import statistics
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from repro.asm import Assembler, assemble  # noqa: E402
from repro.sim import Machine  # noqa: E402
from repro.umpu import UmpuSystem  # noqa: E402

import bench_macro_overhead as macro  # noqa: E402


# ----------------------------------------------------------------------
# instruction counting
# ----------------------------------------------------------------------
def _count_instructions(build):
    """Retired-instruction count of one steady-state workload pass.

    The first (cold) pass may differ from steady state (allocator
    warm-up), so one untimed pass runs first and the second pass is
    counted.  Uses the core's ``instret`` counter when present; on
    older cores it falls back to a counting wrapper around ``step()``
    (the workload is deterministic, so a separate counting pass sees
    the same stream)."""
    machine, run_pass = build()
    core = machine.core
    run_pass()  # cold pass: reach steady state
    if hasattr(core, "instret"):
        before = core.instret
        run_pass()
        return core.instret - before
    count = [0]
    orig_step = core.step

    def counting_step():
        count[0] += 1
        return orig_step()

    core.step = counting_step
    run_pass()
    return count[0]


# ----------------------------------------------------------------------
# workloads: each returns (machine-with-core, run_one_pass callable)
# ----------------------------------------------------------------------
MICRO_ALU = """
    ldi r26, 0x00
    ldi r27, 0x08           ; X -> scratch SRAM
    ldi r24, {lo}
    ldi r25, {hi}
loop:
    ldi r16, 0x2A
    add r17, r16
    adc r18, r17
    eor r19, r18
    lsr r19
    inc r20
    dec r21
    com r22
    mov r23, r19
    swap r23
    sbiw r24, 1
    brne loop
    break
"""

MICRO_MEMORY = """
    ldi r24, {lo}
    ldi r25, {hi}
loop:
    ldi r26, 0x00
    ldi r27, 0x08           ; X -> scratch SRAM each iteration
    ldi r16, 0x5A
    st X+, r16
    st X+, r16
    ld r17, -X
    ld r18, -X
    push r17
    pop r19
    sts 0x0900, r18
    lds r20, 0x0900
    sbiw r24, 1
    brne loop
    break
"""


def _micro(src, iterations):
    program = assemble(src.format(lo=iterations & 0xFF,
                                  hi=(iterations >> 8) & 0xFF), "micro")
    machine = Machine(program)

    def run_pass():
        machine.reset()
        machine.core.run(max_cycles=100_000_000)

    return machine, run_pass


def build_micro_alu(iterations):
    return _micro(MICRO_ALU, iterations)


def build_micro_memory(iterations):
    return _micro(MICRO_MEMORY, iterations)


def build_macro_unprot(iterations):
    """The macro pipeline's unprotected configuration (stock core)."""
    layout_runtime = macro.build_runtime()
    src = (".org 0x3000\n"
           + macro.CONSUMER.format(FREE="free_unprot")
           + "\n.org 0x3400\n"
           + macro.PRODUCER.format(MALLOC="malloc_unprot",
                                   CHANGE_OWN="chown_unprot",
                                   CONSUME="consume", CONSUMER_DOM=1))
    program = Assembler(symbols=dict(layout_runtime.symbols)).assemble(
        src, "unprot")
    machine = Machine(layout_runtime)
    for w, v in program.words.items():
        machine.memory.write_flash_word(w, v)
    machine.core.invalidate_decode_cache()
    machine.call("hb_init", max_cycles=100000)
    produce = program.symbol("produce")

    def run_pass():
        for _ in range(iterations):
            machine.call(produce, max_cycles=100000)

    return machine, run_pass


def build_macro_umpu(iterations):
    """The macro pipeline on UMPU hardware (interposers + call hooks)."""
    system = UmpuSystem()
    consumer = system.load_module(
        assemble(macro._consumer_src(system), "consumer"), "consumer",
        exports=("consume",))
    system.load_module(
        assemble(macro._producer_src(system,
                                     consumer.exports["consume"],
                                     consumer.domain), "producer"),
        "producer", exports=("produce",))

    def run_pass():
        for _ in range(iterations):
            system.call_export("producer", "produce",
                               max_cycles=100000)

    return system.machine, run_pass


WORKLOADS = [
    ("micro_alu", build_micro_alu, 20000),
    ("micro_memory", build_micro_memory, 12000),
    ("macro_unprot", build_macro_unprot, 60),
    ("macro_umpu", build_macro_umpu, 40),
]

QUICK_SCALE = 0.2


# ----------------------------------------------------------------------
def measure(name, build, iterations, warmup, repeats):
    instructions = _count_instructions(lambda: build(iterations))
    machine, run_pass = build(iterations)
    core = machine.core
    run_pass()  # cold pass: reach allocator steady state before timing
    cycles_per_pass = None
    for _ in range(warmup):
        before = core.cycles
        run_pass()
        consumed = core.cycles - before
        # determinism guard: every steady pass simulates identical work
        if cycles_per_pass is None:
            cycles_per_pass = consumed
        elif consumed != cycles_per_pass:
            raise AssertionError(
                "{}: non-deterministic pass ({} vs {} cycles)".format(
                    name, consumed, cycles_per_pass))
    times = []
    for _ in range(repeats):
        before = core.cycles
        t0 = time.perf_counter()
        run_pass()
        t1 = time.perf_counter()
        consumed = core.cycles - before
        if cycles_per_pass is not None and consumed != cycles_per_pass:
            raise AssertionError(
                "{}: non-deterministic pass ({} vs {} cycles)".format(
                    name, consumed, cycles_per_pass))
        times.append(t1 - t0)
    median = statistics.median(times)
    return {
        "instructions": instructions,
        "cycles_per_pass": cycles_per_pass,
        "median_s": round(median, 6),
        "min_s": round(min(times), 6),
        "repeats": repeats,
        "ips": round(instructions / median, 1),
    }


def run_suite(warmup, repeats, scale=1.0):
    results = {}
    for name, build, iterations in WORKLOADS:
        n = max(1, int(iterations * scale))
        results[name] = measure(name, build, n, warmup, repeats)
        print("{:14s} {:>12,.0f} instr/s   ({:,} instructions, "
              "median of {} runs: {:.4f}s)".format(
                  name, results[name]["ips"],
                  results[name]["instructions"], repeats,
                  results[name]["median_s"]))
    return results


def compare(results, baseline_path, max_regression):
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    failed = []
    for name, current in results.items():
        base = baseline.get("workloads", {}).get(name)
        if base is None:
            continue
        floor = base["ips"] * (1.0 - max_regression)
        verdict = "ok" if current["ips"] >= floor else "REGRESSED"
        print("{:14s} baseline {:>12,.0f}  current {:>12,.0f}  "
              "floor {:>12,.0f}  {}".format(
                  name, base["ips"], current["ips"], floor, verdict))
        if current["ips"] < floor:
            failed.append(name)
    return failed


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="host-speed (instructions/sec) benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: smaller workloads, "
                             "fewer repeats")
    parser.add_argument("--warmup", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--out", default=None,
                        help="write results JSON here "
                             "(default: BENCH_host.json)")
    parser.add_argument("--compare", default=None, metavar="BASELINE",
                        help="compare against a baseline JSON and fail "
                             "on regression")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed fractional ips drop vs baseline "
                             "(default 0.30)")
    args = parser.parse_args(argv)

    warmup = args.warmup if args.warmup is not None else (1 if args.quick
                                                          else 2)
    repeats = args.repeats if args.repeats is not None else (3 if args.quick
                                                             else 5)
    scale = QUICK_SCALE if args.quick else 1.0
    results = run_suite(warmup, repeats, scale)

    doc = {
        "schema": 1,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "quick": args.quick,
        "workloads": results,
    }
    out = args.out or "BENCH_host.json"
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("wrote {}".format(out))

    if args.compare:
        failed = compare(results, args.compare, args.max_regression)
        if failed:
            print("FAIL: instructions/sec regressed >{:.0%} on: {}".format(
                args.max_regression, ", ".join(failed)))
            return 1
        print("ok: no workload regressed more than {:.0%}".format(
            args.max_regression))
    return 0


if __name__ == "__main__":
    sys.exit(main())
