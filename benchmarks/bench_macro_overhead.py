"""Application-level protection overhead (paper §1.2 / §5: UMPU's
"performance was evaluated by executing complex software systems" and
the abstract's "minimal impact on performance").

A two-module data-pipeline workload — producer allocates a packet,
fills it, transfers ownership, calls the consumer across domains;
consumer stamps it and frees it — runs in three configurations:

* **unprotected**: direct calls, raw stores, plain allocator, stock core
* **SFI**: modules rewritten, software checks (binary-rewrite system)
* **UMPU**: identical unrewritten modules, hardware checks

The table reports cycles per iteration and relative overhead — the
paper's headline trade-off quantified end to end.
"""

from repro.analysis.tables import render_table
from repro.asm import Assembler, assemble
from repro.sfi import SfiSystem
from repro.sfi.runtime_asm import build_runtime
from repro.sim import Machine
from repro.umpu import UmpuSystem

PRODUCER = """
.equ MALLOC = {MALLOC}
.equ CHANGE_OWN = {CHANGE_OWN}
.equ CONSUME = {CONSUME}
.equ CONSUMER_DOM = {CONSUMER_DOM}

produce:                    ; one pipeline iteration
    push r16
    ldi r24, 12
    ldi r25, 0
    call MALLOC
    cp r24, r1
    cpc r25, r1
    breq p_done
    movw r16, r24           ; keep the packet pointer
    movw r26, r24
    ldi r18, 8
p_fill:
    st X+, r18
    dec r18
    brne p_fill
    movw r24, r16
    ldi r22, CONSUMER_DOM
    call CHANGE_OWN         ; hand the packet to the consumer
    movw r24, r16
    call CONSUME
p_done:
    pop r16
    ret
"""

CONSUMER = """
.equ FREE = {FREE}

consume:                    ; r24:25 = packet (we own it now)
    push r16
    push r17
    movw r16, r24
    movw r26, r24
    ldi r18, 0x7E
    st X, r18               ; stamp the header
    movw r24, r16
    call FREE
    pop r17
    pop r16
    ret
"""

ITERATIONS = 10


def run_unprotected():
    """Both modules + runtime in one image on a stock core."""
    layout_runtime = build_runtime()
    # consumer first: `.equ CONSUME = consume` needs the label defined
    src = (".org 0x3000\n"
           + CONSUMER.format(FREE="free_unprot")
           + "\n.org 0x3400\n"
           + PRODUCER.format(MALLOC="malloc_unprot",
                             CHANGE_OWN="chown_unprot",
                             CONSUME="consume", CONSUMER_DOM=1))
    program = Assembler(symbols=dict(layout_runtime.symbols)).assemble(
        src, "unprot")
    machine = Machine(layout_runtime)
    for w, v in program.words.items():
        machine.memory.write_flash_word(w, v)
    machine.core.invalidate_decode_cache()
    machine.call("hb_init", max_cycles=100000)
    produce = program.symbol("produce")
    total = 0
    for _ in range(ITERATIONS):
        total += machine.call(produce, max_cycles=100000)
    return total // ITERATIONS


def _consumer_src(system):
    return CONSUMER.format(
        FREE=hex(system.kernel_symbols()["KERNEL_FREE"]))


def _producer_src(system, consumer_entry, consumer_dom):
    syms = system.kernel_symbols()
    return PRODUCER.format(MALLOC=hex(syms["KERNEL_MALLOC"]),
                           CHANGE_OWN=hex(syms["KERNEL_CHANGE_OWN"]),
                           CONSUME=hex(consumer_entry),
                           CONSUMER_DOM=consumer_dom)


def run_sfi():
    system = SfiSystem()
    consumer = system.load_module(
        assemble(_consumer_src(system), "consumer"), "consumer",
        exports=("consume",))
    system.load_module(
        assemble(_producer_src(system, consumer.exports["consume"],
                               consumer.domain), "producer"),
        "producer", exports=("produce",))
    total = 0
    for _ in range(ITERATIONS):
        _r, cycles = system.call_export("producer", "produce",
                                        max_cycles=100000)
        total += cycles
    return total // ITERATIONS


def run_umpu():
    system = UmpuSystem()
    consumer = system.load_module(
        assemble(_consumer_src(system), "consumer"), "consumer",
        exports=("consume",))
    system.load_module(
        assemble(_producer_src(system, consumer.exports["consume"],
                               consumer.domain), "producer"),
        "producer", exports=("produce",))
    total = 0
    for _ in range(ITERATIONS):
        _r, cycles = system.call_export("producer", "produce",
                                        max_cycles=100000)
        total += cycles
    return total // ITERATIONS


def build_table():
    base = run_unprotected()
    sfi = run_sfi()
    umpu = run_umpu()
    rows = [
        ("unprotected", base, "1.00x", "-"),
        ("UMPU (hardware)", umpu, "{:.2f}x".format(umpu / base),
         "{:+.1f}%".format(100.0 * (umpu - base) / base)),
        ("SFI (binary rewrite)", sfi, "{:.2f}x".format(sfi / base),
         "{:+.1f}%".format(100.0 * (sfi - base) / base)),
    ]
    table = render_table(
        "Application-level overhead: producer/consumer pipeline "
        "({} iterations)".format(ITERATIONS),
        ("Configuration", "Cycles/iter", "Relative", "Overhead"),
        rows,
        note="per iteration: 1 malloc + 8 stores + 1 change_own + "
             "1 cross-domain call + 1 store + 1 free.  UMPU's residual "
             "overhead is dominated by the protected *library* "
             "(memory-map updates, Table 4), not the hardware checks; "
             "SFI pays that plus software checks on every store/call.")
    return {"base": base, "sfi": sfi, "umpu": umpu}, table


def test_macro_overhead(benchmark, show):
    from conftest import once
    result, table = once(benchmark, build_table)
    show(table)
    # the co-design headline: hardware protection costs a fraction of
    # software protection; both cost something
    assert result["base"] < result["umpu"] < result["sfi"]
    assert result["umpu"] - result["base"] < \
        (result["sfi"] - result["base"]) / 3
    # even on this maximally check-dense workload (every iteration is
    # almost nothing but allocator traffic and cross-domain calls) the
    # hardware system stays well under half the software system's cost
    assert result["umpu"] < result["sfi"] / 2


if __name__ == "__main__":
    print(build_table()[1])
