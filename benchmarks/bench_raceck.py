"""Interrupt-race analysis: cost per module and the latency
cross-check.

Runs the concurrency analysis (I-bit dataflow, mainline x ISR race
intersection, WCET/latency certification — ``harbor-race``) over the
example modules, measuring analysis wall-time, and then executes an
interrupt-driven workload at several timer periods with the metrics
registry attached, comparing the *static* ``static_max_irq_latency``
bound against the *runtime* ``irq_entry_latency`` histogram maximum.

Acceptance: the static bound dominates the observed runtime maximum at
every period (the certificate is sound for this workload), and the
racy example yields HL019 + HL020 while the clean modules stay
race-free.
"""

import time

from repro.analysis.static.cfg import RegionCFG
from repro.analysis.static.concurrency import (
    ConcurrencyAnalysis,
    find_isr_labels,
    publish_gauges,
    vector_table_isrs,
)
from repro.analysis.static.diagnostics import DiagnosticsEngine
from repro.analysis.tables import render_table
from repro.asm import Assembler, assemble
from repro.asm.assembler import default_symbols
from repro.sfi.layout import SfiLayout
from repro.sfi.system import SfiSystem
from repro.sim import Machine
from repro.sim.devices import PeriodicTimer
from repro.sim.interrupts import InterruptController
from repro.trace.metrics import MetricsRegistry

EXAMPLES = [
    ("clean_sensor", "examples/modules/clean_sensor.s", 0),
    ("static_logger", "examples/modules/static_logger.s", 256),
    ("racy_sampler", "examples/modules/racy_sampler.s", 0),
]

#: timer periods (cycles) the runtime cross-check sweeps; all above
#: the ISR's 17-cycle WCET + 4-cycle response so the mainline makes
#: progress, staggered to land raises at different loop phases
PERIODS = (31, 64, 131, 257)

IRQ_WORKLOAD = (
    "    jmp main\n"
    "    jmp tick_isr\n"
    "main:\n"
    "    sei\n"
    "    ldi r16, 200\n"
    "spin:\n"
    "    lds r24, 0x0700\n"
    "    lds r25, 0x0701\n"
    "    adiw r24, 1\n"
    "    sts 0x0700, r24\n"
    "    sts 0x0701, r25\n"
    "    dec r16\n"
    "    brne spin\n"
    "    cli\n"
    "    sts 0x0700, r16\n"
    "    sts 0x0701, r16\n"
    "    sei\n"
    "    break\n"
    "tick_isr:\n"
    "    push r24\n"
    "    lds r24, 0x0700\n"
    "    inc r24\n"
    "    sts 0x0700, r24\n"
    "    pop r24\n"
    "    reti\n")


def _analyze_module(path, static_data):
    """The harbor-race pipeline for one module source, timed."""
    layout = SfiLayout(static_data_bytes=static_data,
                       static_data_domains=1 if static_data else 0)
    kernel = SfiSystem(layout=layout).kernel_symbols()
    with open(path) as handle:
        program = Assembler(symbols=kernel).assemble(handle.read(),
                                                     name=path)
    predefined = set(default_symbols()) | set(kernel)
    lo, hi = program.extent()
    labels = {n: a for n, a in program.symbols.items()
              if n not in predefined and lo * 2 <= a <= hi * 2 + 1}
    words = dict(program.words)

    def read_word(word_addr):
        return words.get(word_addr, 0xFFFF)

    t0 = time.perf_counter()
    isrs = find_isr_labels(labels)
    mainline = set(labels.values()) - {i.entry for i in isrs}
    cfg = RegionCFG.build(read_word, lo * 2, (hi + 1) * 2,
                          name=path.rsplit("/", 1)[-1],
                          extra_leaders=sorted(labels.values()))
    engine = DiagnosticsEngine()
    report = ConcurrencyAnalysis(
        cfg, mainline_entries=mainline,
        isrs=isrs).run(engine=engine)
    elapsed_ms = (time.perf_counter() - t0) * 1000.0
    return report, engine, elapsed_ms


def _static_workload_bound():
    program = assemble(IRQ_WORKLOAD)
    words = dict(program.words)

    def read_word(word_addr):
        return words.get(word_addr, 0xFFFF)

    isrs = vector_table_isrs(read_word, nvectors=2)
    lo, hi = program.extent()
    leaders = sorted(v for k, v in program.symbols.items()
                     if k not in set(default_symbols()))
    cfg = RegionCFG.build(read_word, lo * 2, (hi + 1) * 2, name="irq",
                          extra_leaders=leaders)
    report = ConcurrencyAnalysis(
        cfg, mainline_entries=[program.symbols["main"]],
        isrs=isrs).run()
    registry = publish_gauges(MetricsRegistry(), report)
    return report, registry


def _run_workload(period):
    machine = Machine(assemble(IRQ_WORKLOAD))
    controller = InterruptController(machine.core, nvectors=2)
    machine.attach_metrics()
    PeriodicTimer(controller, line=1, period=period).install(machine.core)
    machine.run(max_cycles=100_000)
    hist = machine.core.metrics.histogram(
        "irq_entry_latency", buckets=(4, 8, 16, 32, 64, 128, 256),
        line=1)
    return controller.taken, hist.max


def build_table():
    rows = []
    module_reports = {}
    for name, path, static_data in EXAMPLES:
        report, engine, elapsed_ms = _analyze_module(path, static_data)
        module_reports[name] = (report, engine)
        bound = report.latency.bound if report.latency else None
        rows.append((name, report.total_instrs,
                     len(report.isrs),
                     "{}/{}".format(len(report.races),
                                    len(report.torn)),
                     "unbounded" if bound is None else bound,
                     "{:.2f}".format(elapsed_ms)))

    static_report, registry = _static_workload_bound()
    bound = static_report.latency.bound
    sweep = []
    for period in PERIODS:
        taken, runtime_max = _run_workload(period)
        sweep.append((period, taken, runtime_max))
        rows.append(("irq workload (T={})".format(period),
                     static_report.total_instrs,
                     len(static_report.isrs),
                     "{}/{}".format(len(static_report.races),
                                    len(static_report.torn)),
                     "{} >= {} seen".format(bound, runtime_max),
                     "-"))

    dominated = all(runtime_max is not None and runtime_max <= bound
                    for _p, _t, runtime_max in sweep)
    gauges = {g["name"] for g in registry.to_dict()["gauges"]}
    table = render_table(
        "Interrupt-race analysis: cost and the latency cross-check",
        ("Module", "Instrs", "ISRs", "Races/torn",
         "Static latency bound (cycles)", "Analysis ms"),
        rows,
        note="static bound {} cycles vs runtime irq_entry_latency "
             "maxima {} (taken {}); bound {} every observation".format(
                 bound,
                 [m for _p, _t, m in sweep],
                 [t for _p, t, _m in sweep],
                 "dominates" if dominated else "MISSES"))
    racy_report, racy_engine = module_reports["racy_sampler"]
    return {
        "bound": bound,
        "sweep": sweep,
        "dominates": dominated,
        "racy_codes": sorted({d.code for d in racy_engine.findings}),
        "clean_race_free": all(
            not module_reports[n][0].races and
            not module_reports[n][0].torn
            for n in ("clean_sensor", "static_logger")),
        "gauges_published": gauges,
    }, table


def test_race_analysis_and_latency_cross_check(benchmark, show):
    from conftest import once
    result, table = once(benchmark, build_table)
    show(table)
    assert result["dominates"], \
        "static latency bound misses a runtime observation"
    assert {"HL019", "HL020"} <= set(result["racy_codes"])
    assert result["clean_race_free"]
    assert {"static_max_irq_latency",
            "static_isr_wcet"} <= result["gauges_published"]


if __name__ == "__main__":
    print(build_table()[1])
