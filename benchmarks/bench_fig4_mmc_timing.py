"""Figure 4 (paper Figures `mmcop` and `memtrans`): MMC timing and
address translation.

4a: the phase sequence of a checked store (stall/intercept, translate +
permission fetch, compare, write-enable), printed from the MMC's
waveform recorder.

4b: the address-translation datapath, worked for concrete addresses:
offset subtraction, block-number shift, table index and nibble select.
"""

from repro.analysis.tables import render_table
from repro.asm import assemble
from repro.umpu import HarborLayout, UmpuMachine

SRC = """
store_fn:
    movw r26, r24
    st X, r22
    ret
"""


def build_timing():
    layout = HarborLayout()
    machine = UmpuMachine(assemble(SRC), layout=layout)
    machine.memmap.set_segment(0x0400, 8, 0)
    wave = machine.mmc.record_waveform()
    machine.enter_domain(0)
    cycles = machine.call("store_fn", 0x0400, ("u8", 0x42))
    rows = []
    for step, entry in enumerate(wave):
        signals = ", ".join("{}={}".format(
            k, hex(v) if isinstance(v, int) else v)
            for k, v in entry.items() if k != "phase")
        rows.append((step, entry["phase"], signals))
    table = render_table(
        "Figure 4a -- MMC operation phases for one checked store",
        ("Step", "Phase", "Signals"), rows,
        note="total call: {} cycles (the table access adds exactly one "
             "stall cycle)".format(cycles))
    return machine, wave, table


def build_translation():
    layout = HarborLayout()
    machine = UmpuMachine(assemble(SRC), layout=layout)
    cfg = layout.memmap_config
    rows = []
    for addr in (0x0200, 0x0207, 0x0208, 0x0400, 0x0CFF):
        tr = cfg.translate(addr)
        table_addr, shift = machine.mmc.translate(addr)
        rows.append((hex(addr), hex(tr.offset), tr.block,
                     hex(table_addr),
                     "high" if tr.entry_index else "low",
                     shift))
    table = render_table(
        "Figure 4b -- Address translation (write addr -> memmap entry)",
        ("Write addr", "Offset", "Block #", "Table byte addr",
         "Nibble", "Shift"),
        rows,
        note="offset = addr - mem_prot_bot; block = offset >> 3; "
             "byte = mem_map_base + (block >> 1); nibble = block & 1")
    return rows, table


def test_fig4a_timing(benchmark, show):
    from conftest import once
    machine, wave, table = once(benchmark, build_timing)
    show(table)
    phases = [w["phase"] for w in wave]
    assert phases == ["intercept", "translate", "write_enable"]


def test_fig4b_translation(benchmark, show):
    rows, table = build_translation()
    show(table)

    def translate_sweep():
        layout = HarborLayout()
        machine = UmpuMachine(assemble(SRC), layout=layout)
        for addr in range(0x200, 0xD00, 64):
            machine.mmc.translate(addr)

    benchmark(translate_sweep)
    # consecutive blocks alternate nibbles and share bytes pairwise
    assert rows[0][4] == "low" and rows[1][4] == "low"
    assert rows[2][4] == "high"
    assert rows[0][3] == rows[2][3]  # blocks 0 and 1 pack into one byte


if __name__ == "__main__":
    print(build_timing()[2])
    print()
    print(build_translation()[1])
