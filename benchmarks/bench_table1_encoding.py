"""Table 1 (paper Table `mmap_table`): the memory-map permission codes,
printed from the implementation (the codes in the table are computed,
not transcribed), plus encode/decode throughput."""

from repro.analysis.tables import render_table
from repro.core.encoding import (
    MultiDomainEncoding,
    TRUSTED_DOMAIN,
    TwoDomainEncoding,
)


def build_table():
    enc = MultiDomainEncoding()
    rows = [
        ("{:04b}".format(enc.encode(TRUSTED_DOMAIN, True)),
         "Free or Start of Trusted Segment"),
        ("{:04b}".format(enc.encode(TRUSTED_DOMAIN, False)),
         "Later portion of Trusted Segment"),
        ("xxx1", "Start of Domain (0 - 6) Segment"),
        ("xxx0", "Later portion of Domain (0 - 6) Segment"),
    ]
    table = render_table(
        "Table 1 -- Encoded information in memory map table "
        "(multi-domain)",
        ("Code", "Meaning"), rows)
    two = TwoDomainEncoding()
    rows2 = [
        ("{:02b}".format(two.encode(TRUSTED_DOMAIN, True)),
         "Free or Start of Trusted Segment"),
        ("{:02b}".format(two.encode(TRUSTED_DOMAIN, False)),
         "Later portion of Trusted Segment"),
        ("{:02b}".format(two.encode(0, True)), "Start of User Segment"),
        ("{:02b}".format(two.encode(0, False)),
         "Later portion of User Segment"),
    ]
    table2 = render_table(
        "Two-domain variant (2-bit entries, paper section 5.2)",
        ("Code", "Meaning"), rows2)
    return rows, table + "\n" + table2


def test_table1_codes(benchmark, show):
    _rows, table = build_table()
    show(table)
    enc = MultiDomainEncoding()

    def encode_decode_sweep():
        for dom in range(8):
            for start in (True, False):
                assert enc.decode(enc.encode(dom, start)).owner == dom

    benchmark(encode_decode_sweep)
    assert enc.encode(TRUSTED_DOMAIN, True) == 0b1111   # paper row 1
    assert enc.encode(TRUSTED_DOMAIN, False) == 0b1110  # paper row 2
    for dom in range(7):
        assert enc.encode(dom, True) & 1 == 1           # xxx1
        assert enc.encode(dom, False) & 1 == 0          # xxx0


if __name__ == "__main__":
    print(build_table()[1])
