"""SOS kernel substrate: modules, messaging, linking, fault containment."""

import pytest

from repro.core.encoding import TRUSTED_DOMAIN
from repro.core.faults import MemMapFault
from repro.sos import (
    CrossDomainLinker,
    Message,
    MessageQueue,
    MSG_TIMER_TIMEOUT,
    SOS_ERROR,
    SosKernel,
    SosModule,
)
from repro.core.control_flow import JumpTable
from repro.isa.encoding import decode_words


# ---------------------------------------------------------------------
# message queue
# ---------------------------------------------------------------------
def test_queue_fifo():
    q = MessageQueue()
    m1 = Message("a", "b", 1)
    m2 = Message("a", "b", 2)
    q.post(m1)
    q.post(m2)
    assert q.take() is m1
    assert q.take() is m2
    assert q.take() is None
    assert q.posted == 2 and q.delivered == 2


def test_queue_capacity_drops():
    q = MessageQueue(capacity=2)
    assert q.post(Message("a", "b", 1))
    assert q.post(Message("a", "b", 1))
    assert not q.post(Message("a", "b", 1))
    assert q.dropped == 1


def test_queue_pending_for():
    q = MessageQueue()
    q.post(Message("a", "x", 1))
    q.post(Message("a", "y", 1))
    q.post(Message("a", "x", 1))
    assert q.pending_for("x") == 2


# ---------------------------------------------------------------------
# modules and domains
# ---------------------------------------------------------------------
class Counter(SosModule):
    name = "counter"

    def __init__(self):
        self.buf = None
        self.count = 0

    def init(self, ctx):
        self.buf = ctx.malloc(8)
        ctx.register_function("get_count", lambda c, *a: self.count)

    def handle_message(self, ctx, msg):
        self.count += 1
        ctx.store(self.buf, self.count)


def test_load_module_assigns_domain_and_inits():
    k = SosKernel()
    rec = k.load_module(Counter())
    assert rec.domain.did == 0
    assert rec.module.buf is not None
    assert k.harbor.memmap.owner_of(rec.module.buf) == 0


def test_message_dispatch():
    k = SosKernel()
    k.load_module(Counter())
    k.post(Message("kernel", "counter", MSG_TIMER_TIMEOUT))
    k.post(Message("kernel", "counter", MSG_TIMER_TIMEOUT))
    assert k.run() == 2
    mod = k.modules["counter"].module
    assert mod.count == 2
    assert k.harbor.load(mod.buf) == 2


def test_message_to_unknown_module_dropped():
    k = SosKernel()
    k.post(Message("kernel", "ghost", MSG_TIMER_TIMEOUT))
    assert k.run() == 1  # consumed, no crash


def test_cross_domain_invoke():
    k = SosKernel()
    k.load_module(Counter())
    k.post_timer("counter")
    k.run()
    assert k.cross_domain_invoke("x", "counter", "get_count") == 1


def test_cross_domain_invoke_missing_provider():
    k = SosKernel()
    assert k.cross_domain_invoke("x", "ghost", "fn") is SOS_ERROR


def test_unload_reclaims_memory_and_functions():
    k = SosKernel()
    rec = k.load_module(Counter())
    buf = rec.module.buf
    k.unload_module("counter")
    assert k.harbor.memmap.owner_of(buf) == TRUSTED_DOMAIN
    assert not k.is_exported("counter", "get_count")
    assert rec.domain.did not in k.harbor.domains
    # the domain id is reusable
    rec2 = k.load_module(Counter())
    assert rec2.domain.did == 0


class WildWriter(SosModule):
    name = "wild"

    def handle_message(self, ctx, msg):
        ctx.store(msg.data["target"], 0x66)


def test_fault_containment():
    k = SosKernel(protected=True)
    k.load_module(WildWriter())
    victim = k.harbor.malloc(8, k.harbor.domains.trusted)
    k.post(Message("kernel", "wild", MSG_TIMER_TIMEOUT,
                   data={"target": victim}))
    k.run()
    assert len(k.fault_log) == 1
    assert isinstance(k.fault_log[0].fault, MemMapFault)
    assert k.modules["wild"].state == "crashed"
    assert k.harbor.load(victim) == 0
    # crashed modules receive no further messages
    k.post(Message("kernel", "wild", MSG_TIMER_TIMEOUT,
                   data={"target": victim}))
    k.run()
    assert len(k.fault_log) == 1


def test_restart_crashed_module():
    k = SosKernel(protected=True, restart_crashed=True)
    k.load_module(WildWriter())
    victim = k.harbor.malloc(8, k.harbor.domains.trusted)
    k.post(Message("kernel", "wild", MSG_TIMER_TIMEOUT,
                   data={"target": victim}))
    k.run()
    assert len(k.fault_log) == 1
    assert k.modules["wild"].state == "loaded"   # fresh instance


def test_unprotected_kernel_lets_corruption_through():
    k = SosKernel(protected=False)
    k.load_module(WildWriter())
    victim = k.harbor.malloc(8, k.harbor.domains.trusted)
    k.post(Message("kernel", "wild", MSG_TIMER_TIMEOUT,
                   data={"target": victim}))
    k.run()
    assert not k.fault_log
    assert k.harbor.load(victim) == 0x66  # silent corruption


class Producer(SosModule):
    name = "producer"

    def handle_message(self, ctx, msg):
        buf = ctx.malloc(16)
        ctx.store(buf, 0x42)
        ctx.post("consumer", MSG_TIMER_TIMEOUT, payload=buf, length=16)


class Consumer(SosModule):
    name = "consumer"

    def __init__(self):
        self.got = None

    def handle_message(self, ctx, msg):
        # the payload now belongs to us: we may write it
        ctx.store(msg.payload + 1, 0x43)
        self.got = msg.payload


def test_payload_ownership_moves_with_message():
    k = SosKernel()
    k.load_module(Producer())
    consumer = Consumer()
    k.load_module(consumer)
    k.post_timer("producer")
    k.run()
    assert consumer.got is not None
    assert k.harbor.memmap.owner_of(consumer.got) == \
        k.modules["consumer"].domain.did
    assert k.harbor.load(consumer.got + 1) == 0x43


def test_sensor_series():
    k = SosKernel()
    k.set_sensor_series([5, 6])
    assert k.sensor_read() == 5
    assert k.sensor_read() == 6
    assert k.sensor_read() == (6 + 17) & 0xFF  # deterministic fallback


def test_duplicate_load_rejected():
    k = SosKernel()
    k.load_module(Counter())
    with pytest.raises(ValueError):
        k.load_module(Counter())


# ---------------------------------------------------------------------
# cross-domain linker
# ---------------------------------------------------------------------
def test_linker_emits_jmp_entries():
    jt = JumpTable(base=0x1000, ndomains=2)
    linker = CrossDomainLinker(jt, exception_target=0x0040)
    entry = linker.export(0, "fn", 0x3000)
    assert entry == 0x1000
    words = {}
    linker.emit(lambda a, v: words.__setitem__(a, v))
    instr = decode_words(words[0x800], words[0x801])
    assert instr.key == "jmp"
    assert instr.operands[0] * 2 == 0x3000
    # an empty slot jumps to the exception routine
    instr = decode_words(words[0x802], words[0x803])
    assert instr.operands[0] * 2 == 0x0040


def test_linker_indices_and_lookup():
    jt = JumpTable(base=0x1000, ndomains=4)
    linker = CrossDomainLinker(jt)
    e0 = linker.export(1, "a", 0x3000)
    e1 = linker.export(1, "b", 0x3010)
    assert e1 == e0 + 4
    assert linker.entry_for(1, "b") == e1
    assert linker.subscriptions(1) == {"a": e0, "b": e1}


def test_linker_explicit_index_and_overflow():
    jt = JumpTable(base=0x1000, ndomains=1, entries_per_domain=2)
    linker = CrossDomainLinker(jt)
    linker.export(0, "x", 0x3000, index=1)
    with pytest.raises(ValueError):
        linker.export(0, "y", 0x3000, index=2)
    with pytest.raises(ValueError):
        linker.export(0, "z", 0x3000)  # auto index = max+1 = 2: full
