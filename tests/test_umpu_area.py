"""Gate-count area model (paper Table 6) — model sanity and shape."""

from repro.umpu.area import (
    PAPER_TABLE6,
    baseline_core_area,
    core_growth,
    domain_tracker_area,
    fetch_decoder_area,
    fixed_config_savings,
    gate_count_table,
    glue_area,
    mmc_area,
    safe_stack_area,
)


def test_rows_match_paper_components():
    rows = gate_count_table()
    assert [r.component for r in rows] == list(PAPER_TABLE6)


def test_calibration_within_tolerance():
    """Every modelled number lands within 2% of the paper's (the model
    is calibrated against these, so this pins the calibration)."""
    for row in gate_count_table():
        paper_ext, paper_orig = PAPER_TABLE6[row.component]
        assert abs(row.extended - paper_ext) / paper_ext < 0.02, \
            row.component
        if paper_orig is not None:
            assert abs(row.original - paper_orig) / paper_orig < 0.02, \
                row.component


def test_unit_ordering():
    """MMC > Safe Stack > Domain Tracker (the paper's ordering)."""
    mmc = mmc_area().equiv_gates
    ss = safe_stack_area().equiv_gates
    dt = domain_tracker_area().equiv_gates
    assert mmc > ss > dt


def test_core_growth_matches_paper_table():
    growth = core_growth()
    paper = (22498 - 16419) / 16419
    assert abs(growth - paper) < 0.02


def test_fetch_decoder_extension_small():
    base = fetch_decoder_area(False).equiv_gates
    ext = fetch_decoder_area(True).equiv_gates
    assert 0 < ext - base < 200


def test_barrel_shifter_dominates_mmc():
    """'Most of the additions ... are in the memory map decoder that
    maintains a barrel shifter'."""
    parts = dict(mmc_area().parts)
    shifter = sum(g for d, g in parts.items() if "barrel" in d)
    others = [g for d, g in parts.items() if "barrel" not in d]
    assert shifter > max(others)


def test_fixed_config_ablation():
    """Synthesizing for a fixed block size/domain count drops the barrel
    shifters — the paper's suggested optimization must save gates."""
    savings = fixed_config_savings()
    assert savings > 0
    assert mmc_area(configurable=False).equiv_gates \
        == mmc_area(True).equiv_gates - savings
    # the saving is a meaningful fraction of the MMC
    assert savings / mmc_area(True).equiv_gates > 0.2


def test_extended_core_is_sum_of_parts():
    rows = {r.component: r for r in gate_count_table()}
    total = (rows["AVR Core"].original
             + rows["MMC"].extended
             + rows["Safe Stack"].extended
             + rows["Domain Tracker"].extended
             + glue_area().equiv_gates
             + (rows["Fetch Decoder"].extended
                - rows["Fetch Decoder"].original))
    assert rows["AVR Core"].extended == total


def test_structure_report_readable():
    report = mmc_area().report()
    assert "MMC" in report
    assert "barrel shifter" in report
    assert baseline_core_area().raw_gates > 0
