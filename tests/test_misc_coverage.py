"""Coverage for smaller API surfaces not exercised elsewhere."""

import pytest

from repro.asm import assemble, listing
from repro.core import TRUSTED_DOMAIN
from repro.core.faults import MemMapFault, ProtectionFault
from repro.core.heap import FreeRange
from repro.core.memmap import MemMapConfig
from repro.sfi import SfiSystem
from repro.sfi.layout import SfiLayout
from repro.sim import Machine
from repro.sos import SosKernel, SosModule, Subscription


# ---------------------------------------------------------------------
# SFI system recovery
# ---------------------------------------------------------------------
def test_sfi_recover_after_fault():
    system = SfiSystem()
    src = "poke:\n    movw r26, r24\n    mov r18, r22\n    st X, r18\n    ret\n"
    mod = system.load_module(assemble(src, "p"), "p", exports=("poke",))
    victim = system.malloc(8)
    with pytest.raises(MemMapFault):
        system.call_export("p", "poke", victim, ("u8", 1))
    system.recover()
    assert system.cur_domain == TRUSTED_DOMAIN
    assert system.machine.read_word(system.layout.ss_ptr) == \
        system.layout.safe_stack_base
    # dispatch works again
    own = system.malloc(8, domain=mod.domain)
    system.call_export("p", "poke", own, ("u8", 0x42))
    assert system.machine.memory.read_data(own) == 0x42


# ---------------------------------------------------------------------
# kernel/module context helpers
# ---------------------------------------------------------------------
class WordModule(SosModule):
    name = "words"

    def __init__(self):
        self.buf = None
        self.read_back = None

    def init(self, ctx):
        self.buf = ctx.malloc(8)
        ctx.store_word(self.buf, 0xBEEF)
        self.read_back = ctx.load_word(self.buf)
        ctx.post_net(1, marker="hello")


def test_module_context_word_helpers_and_radio():
    kernel = SosKernel()
    kernel.load_module(WordModule())
    module = kernel.modules["words"].module
    assert module.read_back == 0xBEEF
    assert kernel.harbor.load(module.buf) == 0xEF
    assert kernel.radio_log[0]["marker"] == "hello"
    ctx_domain = kernel.modules["words"].domain
    assert kernel.harbor.memmap.owner_of(module.buf) == ctx_domain.did


def test_subscription_linked_property():
    kernel = SosKernel()

    class Provider(SosModule):
        name = "prov"

        def init(self, ctx):
            ctx.register_function("fn", lambda ctx_, *a: 42)

    class Consumer(SosModule):
        name = "cons"

        def __init__(self):
            self.sub = None

        def init(self, ctx):
            self.sub = ctx.subscribe("prov", "fn")

    consumer = Consumer()
    kernel.load_module(consumer)
    assert not consumer.sub.linked
    assert consumer.sub() == 0xFF  # SOS_ERROR while unlinked
    assert consumer.sub.failures == 1
    kernel.load_module(Provider())
    assert consumer.sub.linked
    assert consumer.sub() == 42
    assert consumer.sub.calls == 2


# ---------------------------------------------------------------------
# layout validation and helpers
# ---------------------------------------------------------------------
def test_layout_symbols_complete():
    layout = SfiLayout()
    symbols = layout.symbols()
    for name in ("HB_CUR_DOM", "HB_MMAP_TABLE", "HB_PROT_BOT",
                 "HB_JT_BASE", "HB_TRUSTED", "HB_HDR"):
        assert name in symbols
    assert symbols["HB_TRUSTED"] == TRUSTED_DOMAIN
    assert layout.jt_end == layout.jt_base + 8 * 512
    assert layout.jt_page_log2 == 9


def test_layout_rejects_non_power_of_two_page():
    layout = SfiLayout(jt_page_bytes=500)
    with pytest.raises(ValueError):
        _ = layout.jt_page_log2


# ---------------------------------------------------------------------
# misc small pieces
# ---------------------------------------------------------------------
def test_free_range_end():
    assert FreeRange(0x200, 32).end == 0x220


def test_memmap_config_entries_per_byte():
    assert MemMapConfig(0, 0xFFF, 8, "multi").entries_per_byte == 2
    assert MemMapConfig(0, 0xFFF, 8, "two").entries_per_byte == 4


def test_machine_write_bytes_and_read_bytes():
    machine = Machine(assemble("    break\n"))
    machine.write_bytes(0x300, b"\x01\x02\x03")
    assert machine.read_bytes(0x300, 3) == b"\x01\x02\x03"
    machine.write_word(0x310, 0xCAFE)
    assert machine.read_word(0x310) == 0xCAFE


def test_machine_load_requires_program():
    machine = Machine()
    with pytest.raises(TypeError):
        machine.load("not a program")
    with pytest.raises(ValueError):
        machine.resolve("no_such_label")


def test_listing_renders_whole_runtime():
    from repro.sfi.runtime_asm import build_runtime
    text = listing(build_runtime())
    assert "hb_check_x:" in text
    assert "hb_malloc:" in text
    assert text.count("\n") > 300


def test_protection_fault_str_formatting():
    fault = ProtectionFault("oops", domain=3, addr=0x123)
    assert "domain=3" in str(fault)
    assert "0x0123" in str(fault)


def test_umpu_machine_unconfigured_runs_freely():
    from repro.umpu import UmpuMachine
    machine = UmpuMachine(assemble(
        "f:\n    ldi r26, 0\n    ldi r27, 3\n    st X, r1\n    ret\n"))
    machine.call("f")  # units exist but are disabled: no fault
    assert machine.memory.read_data(0x300) == 0


def test_harbor_system_as_domain_nests():
    from repro.core import HarborSystem
    system = HarborSystem()
    a = system.create_domain()
    b = system.create_domain()
    with system.as_domain(a):
        assert system.cur_domain == a.did
        with system.as_domain(b):
            assert system.cur_domain == b.did
        assert system.cur_domain == a.did
    assert system.cur_domain == TRUSTED_DOMAIN


# ---------------------------------------------------------------------
# module unloading (dynamic SOS behaviour at machine level)
# ---------------------------------------------------------------------
@pytest.mark.parametrize("system_cls", ["sfi", "umpu"])
def test_unload_module_reclaims_everything(system_cls):
    from repro.umpu import UmpuSystem
    system = SfiSystem() if system_cls == "sfi" else UmpuSystem()
    src = ("own:\n    movw r26, r24\n    mov r18, r22\n"
           "    st X, r18\n    ret\n")
    mod = system.load_module(assemble(src, "m1"), "m1", exports=("own",))
    buf = system.malloc(16, domain=mod.domain)
    system.unload_module("m1")
    # memory reclaimed
    assert system.memmap.owner_of(buf) == TRUSTED_DOMAIN
    # the jump-table slot now traps: calling it faults/halts, not runs
    machine = system.machine
    machine.core.set_reg_pair(24, buf)
    machine.core.set_reg(22, 0x42)
    with pytest.raises(Exception):
        system.call_export("m1", "own", buf, ("u8", 0x42))
    # the domain id is reusable by the next module
    mod2 = system.load_module(assemble(src, "m2"), "m2", exports=("own",))
    assert mod2.domain == mod.domain
