"""Shared fixtures: assembled runtime, machines, systems.

Session-scoped where construction is expensive (the runtime assembles
once); function-scoped machines are cheap because loading a Program is
just a dict copy.
"""

import pytest

from repro.asm import Assembler, assemble
from repro.sfi.layout import SfiLayout
from repro.sfi.runtime_asm import build_runtime
from repro.sfi.system import SfiSystem
from repro.sim import Machine
from repro.umpu import HarborLayout, UmpuMachine


@pytest.fixture(scope="session")
def sfi_layout():
    return SfiLayout()


@pytest.fixture(scope="session")
def runtime_program(sfi_layout):
    return build_runtime(sfi_layout)


@pytest.fixture
def runtime_machine(runtime_program):
    machine = Machine(runtime_program)
    machine.call("hb_init", max_cycles=100000)
    return machine


@pytest.fixture
def sfi_system():
    return SfiSystem()


@pytest.fixture
def umpu_layout():
    return HarborLayout()


@pytest.fixture
def umpu_machine(umpu_layout):
    """A configured UmpuMachine with empty flash."""
    return UmpuMachine(layout=umpu_layout)


def asm(source, symbols=None):
    """Assemble helper usable from any test."""
    if symbols:
        return Assembler(symbols=symbols).assemble(source)
    return assemble(source)


@pytest.fixture(name="asm")
def asm_fixture():
    return asm


@pytest.fixture(scope="session")
def runtime_program_global(runtime_program):
    """Alias used by stress tests (session-scoped assembly)."""
    return runtime_program
