"""Shared fixtures: assembled runtime, machines, systems.

Session-scoped where construction is expensive (the runtime assembles
once); function-scoped machines are cheap because loading a Program is
just a dict copy.

When ``REPRO_FAULT_REPORT_DIR`` is set (CI does this), every test
failure dumps the fault reports captured during that test as JSON files
into the directory, so panic dumps travel with the CI artifacts.
"""

import os

import pytest

from repro.asm import Assembler, assemble
from repro.trace import forensics
from repro.sfi.layout import SfiLayout
from repro.sfi.runtime_asm import build_runtime
from repro.sfi.system import SfiSystem
from repro.sim import Machine
from repro.umpu import HarborLayout, UmpuMachine


@pytest.fixture(autouse=True)
def _reset_process_global_state():
    """Each test sees only the fault reports it produced (and never a
    metric accumulated by an earlier test's shared registry)."""
    forensics.reset()
    yield


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    directory = os.environ.get("REPRO_FAULT_REPORT_DIR")
    if (directory and report.when == "call" and report.failed
            and forensics.RECENT_REPORTS):
        forensics.dump_recent(directory, prefix=item.name)


@pytest.fixture(scope="session")
def sfi_layout():
    return SfiLayout()


@pytest.fixture(scope="session")
def runtime_program(sfi_layout):
    return build_runtime(sfi_layout)


@pytest.fixture
def runtime_machine(runtime_program):
    machine = Machine(runtime_program)
    machine.call("hb_init", max_cycles=100000)
    return machine


@pytest.fixture
def sfi_system():
    return SfiSystem()


@pytest.fixture
def umpu_layout():
    return HarborLayout()


@pytest.fixture
def umpu_machine(umpu_layout):
    """A configured UmpuMachine with empty flash."""
    return UmpuMachine(layout=umpu_layout)


def asm(source, symbols=None):
    """Assemble helper usable from any test."""
    if symbols:
        return Assembler(symbols=symbols).assemble(source)
    return assemble(source)


@pytest.fixture(name="asm")
def asm_fixture():
    return asm


@pytest.fixture(scope="session")
def runtime_program_global(runtime_program):
    """Alias used by stress tests (session-scoped assembly)."""
    return runtime_program
