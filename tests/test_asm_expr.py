"""Expression evaluator tests."""

import pytest
from hypothesis import given, strategies as st

from repro.asm.errors import ExprError, SymbolError
from repro.asm.expr import evaluate, evaluate_with_refs, references


@pytest.mark.parametrize("text,expected", [
    ("42", 42),
    ("0x2A", 42),
    ("0b101010", 42),
    ("0o52", 42),
    ("'A'", 65),
    ("'\\n'", 10),
    ("1 + 2 * 3", 7),
    ("(1 + 2) * 3", 9),
    ("10 - 3 - 2", 5),
    ("-5 + 3", -2),
    ("~0", -1),
    ("1 << 4", 16),
    ("0xFF00 >> 8", 0xFF),
    ("0xF0 | 0x0F", 0xFF),
    ("0xFF & 0x0F", 0x0F),
    ("0xFF ^ 0x0F", 0xF0),
    ("7 % 3", 1),
    ("7 / 2", 3),
    ("1 + 2 << 3", 24),         # shift binds looser than +
    ("0x12 | 1 << 7", 0x92),
])
def test_arithmetic(text, expected):
    assert evaluate(text) == expected


@pytest.mark.parametrize("text,expected", [
    ("lo8(0x1234)", 0x34),
    ("hi8(0x1234)", 0x12),
    ("hh8(0x123456)", 0x12),
    ("lo8(-256)", 0),
    ("pm_lo8(0x1234)", 0x1A),   # (0x1234 >> 1) & 0xFF = 0x91A & 0xFF
    ("pm_hi8(0x1234)", 0x09),
    ("pm(0x1000)", 0x800),
    ("lo8(sym + 1)", 0x01),
])
def test_functions(text, expected):
    assert evaluate(text, {"sym": 0x100}) == expected


def test_symbols():
    assert evaluate("a + b", {"a": 1, "b": 2}) == 3


def test_undefined_symbol():
    with pytest.raises(SymbolError):
        evaluate("nope")


def test_division_by_zero():
    with pytest.raises(ExprError):
        evaluate("1 / 0")


@pytest.mark.parametrize("text", ["", "1 +", "(1", "1 ** 2", "@foo", "1 2"])
def test_malformed(text):
    with pytest.raises(ExprError):
        evaluate(text)


def test_references():
    assert references("a + lo8(b) - 3") == {"a", "b"}
    assert references("42") == set()


def test_evaluate_with_refs():
    value, refs = evaluate_with_refs("x * 2", {"x": 21, "y": 0})
    assert value == 42
    assert refs == {"x"}


@given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
def test_addition_matches_python(a, b):
    assert evaluate("{} + {}".format(a, b).replace("+ -", "- ")) == a + b


@given(st.integers(0, 0xFFFF))
def test_lo8_hi8_recompose(v):
    lo = evaluate("lo8({})".format(v))
    hi = evaluate("hi8({})".format(v))
    assert (hi << 8) | lo == v
