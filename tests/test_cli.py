"""Command-line tools."""

import json

import pytest

from repro.cli import (
    cmd_asm,
    cmd_certify,
    cmd_disasm,
    cmd_explain_fault,
    cmd_lint,
    cmd_metrics,
    cmd_opt,
    cmd_profile,
    cmd_rewrite,
    cmd_run,
    cmd_trace,
    cmd_verify,
    main,
)

DEMO = """
work:
    ldi r24, 0
    ldi r22, 5
loop:
    add r24, r22
    dec r22
    brne loop
    ret
store_mod:
    movw r26, r24
    st X, r22
    ret
"""


@pytest.fixture
def demo_source(tmp_path):
    path = tmp_path / "demo.s"
    path.write_text(DEMO)
    return str(path)


def test_asm_to_image_and_listing(demo_source, tmp_path, capsys):
    out = tmp_path / "demo.hex"
    assert cmd_asm([demo_source, "-o", str(out), "--listing"]) == 0
    captured = capsys.readouterr()
    assert "work:" in captured.out
    assert "bytes of code" in captured.err
    lines = out.read_text().strip().splitlines()
    assert lines[0].startswith("00000:")


def test_asm_reports_errors(tmp_path, capsys):
    bad = tmp_path / "bad.s"
    bad.write_text("    frob r1\n")
    assert cmd_asm([str(bad)]) == 1
    assert "error" in capsys.readouterr().err


def test_disasm_roundtrip(demo_source, tmp_path, capsys):
    out = tmp_path / "demo.hex"
    cmd_asm([demo_source, "-o", str(out)])
    capsys.readouterr()
    assert cmd_disasm([str(out)]) == 0
    assert "ldi r24, 0" in capsys.readouterr().out


def test_run_entry(demo_source, capsys):
    assert cmd_run([demo_source, "--entry", "work"]) == 0
    assert "r24:25 = 0x000f" in capsys.readouterr().out


def test_run_with_dump(demo_source, capsys):
    assert cmd_run([demo_source, "--entry", "work",
                    "--dump", "0x100:4"]) == 0
    assert "0x0100: 00 00 00 00" in capsys.readouterr().out


def test_rewrite_and_verify_pipeline(demo_source, tmp_path, capsys):
    out = tmp_path / "mod.hex"
    assert cmd_rewrite([demo_source, "--export", "store_mod",
                        "-o", str(out)]) == 0
    err = capsys.readouterr().err
    assert "stores=1" in err
    assert "export store_mod" in err
    assert cmd_verify([str(out)]) == 0
    assert "ACCEPTED" in capsys.readouterr().out


def test_verify_rejects_raw_module(demo_source, capsys):
    assert cmd_verify([demo_source]) == 1
    assert "REJECTED" in capsys.readouterr().out


def test_rewrite_rejects_unsandboxable(tmp_path, capsys):
    bad = tmp_path / "bad.s"
    bad.write_text("f:\n    ijmp\n    ret\n")
    assert cmd_rewrite([str(bad), "--export", "f"]) == 1
    assert "rewrite error" in capsys.readouterr().err


FAULTING = """
poke:
    ldi r26, 0x00
    ldi r27, 0x04
    ldi r18, 1
    st X, r18
    ret
"""


@pytest.fixture
def fault_source(tmp_path):
    path = tmp_path / "poke.s"
    path.write_text(FAULTING)
    return str(path)


def test_run_umpu_protection_fault(fault_source, capsys):
    # domain 0 owns nothing: the store must fault under --umpu
    assert cmd_run([fault_source, "--entry", "poke", "--umpu",
                    "--domain", "0"]) == 2
    assert "protection fault" in capsys.readouterr().out
    # and pass on the stock core
    assert cmd_run([fault_source, "--entry", "poke"]) == 0


# ---------------------------------------------------------------------
# observability subcommands (golden exit codes + output shapes)
# ---------------------------------------------------------------------
def test_trace_cli_exports_chrome_json(demo_source, tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert cmd_trace([demo_source, "--entry", "work",
                      "-o", str(out)]) == 0
    captured = capsys.readouterr()
    assert "events" in captured.err
    doc = json.loads(out.read_text())
    assert doc["traceEvents"], "exported trace must have events"


def test_profile_cli_renders_attribution(demo_source, capsys):
    assert cmd_profile([demo_source, "--entry", "work"]) == 0
    captured = capsys.readouterr()
    assert "TOTAL" in captured.out
    assert "attribution balanced" in captured.err


def test_explain_fault_renders_panic_dump(fault_source, capsys):
    assert cmd_explain_fault([fault_source, "--entry", "poke",
                              "--umpu", "--domain", "0"]) == 2
    out = capsys.readouterr().out
    assert "PROTECTION FAULT" in out
    assert "faulting address" in out
    assert "last instructions" in out


def test_explain_fault_json_shape(fault_source, tmp_path, capsys):
    out_file = tmp_path / "report.json"
    assert cmd_explain_fault([fault_source, "--entry", "poke",
                              "--umpu", "--domain", "0", "--json",
                              "-o", str(out_file)]) == 2
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == 1
    assert doc["code"] == "memmap"
    assert doc["fault_type"] == "MemMapFault"
    assert doc["instr_window"]
    assert doc["call_stack"]
    assert json.loads(out_file.read_text()) == doc


def test_explain_fault_without_fault_exits_zero(demo_source, capsys):
    assert cmd_explain_fault([demo_source, "--entry", "work"]) == 0
    assert "no protection fault" in capsys.readouterr().out


def test_metrics_cli_text_and_json(demo_source, tmp_path, capsys):
    assert cmd_metrics([demo_source, "--entry", "work"]) == 0
    captured = capsys.readouterr()
    assert "cycles" in captured.out
    assert "metrics" in captured.err

    out_file = tmp_path / "metrics.json"
    assert cmd_metrics([demo_source, "--entry", "work", "--json",
                        "-o", str(out_file)]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == 1
    assert {"counters", "gauges", "histograms"} <= set(doc)
    assert json.loads(out_file.read_text()) == doc


def test_metrics_cli_faulting_run_exits_two(fault_source, capsys):
    assert cmd_metrics([fault_source, "--entry", "poke", "--umpu",
                        "--domain", "0"]) == 2
    captured = capsys.readouterr()
    assert "protection fault" in captured.err
    # the fault itself lands in the registry output
    assert "protection_faults" in captured.out


# ---------------------------------------------------------------------
# harbor-lint: the whole-image static analyzer
# ---------------------------------------------------------------------
CLEAN_MODULE = """
sample:
    ldi r26, 0x40
    ldi r27, 0x06
    ldi r24, 0x2A
    st X+, r24
    ret
report:
    call KERNEL_NOOP
    ret
"""

MISCOMPILED = """
broken:
    ldi r26, 0x00
    ldi r27, 0x0C
    ldi r24, 0x55
    st X+, r24
    call 0x1000
    ret
"""


@pytest.fixture
def clean_module(tmp_path):
    path = tmp_path / "clean.s"
    path.write_text(CLEAN_MODULE)
    return str(path)


@pytest.fixture
def miscompiled(tmp_path):
    path = tmp_path / "miscompiled.s"
    path.write_text(MISCOMPILED)
    return str(path)


def test_lint_clean_module_exits_zero(clean_module, capsys):
    assert cmd_lint([clean_module]) == 0
    out = capsys.readouterr().out
    assert "no findings" in out
    assert "safe-stack occupancy bound" in out
    assert "overhead clean" in out


def test_lint_miscompiled_unchecked_reports_rule_codes(miscompiled,
                                                      capsys):
    assert cmd_lint(["--unchecked", miscompiled]) == 1
    out = capsys.readouterr().out
    for code in ("HL001", "HL002", "HL003"):
        assert code in out
    assert "3 finding(s): 3 error" in out


def test_lint_loader_pipeline_fixes_stores_but_flags_recursion(
        miscompiled, capsys):
    # without --unchecked the module goes through the rewriter: the raw
    # store and the jump-table call are fixed up, but the rewritten
    # self-domain call through the jump table is statically unbounded
    # recursion — the lint still fails, for the deeper reason
    assert cmd_lint([miscompiled]) == 1
    out = capsys.readouterr().out
    assert "HL009" in out
    assert "unbounded" in out


def test_lint_loader_rejects_unsandboxable(tmp_path, capsys):
    bad = tmp_path / "bad.s"
    bad.write_text("f:\n    ijmp\n    ret\n")
    assert cmd_lint([str(bad)]) == 1
    assert "error" in capsys.readouterr().err


def test_lint_json_report(miscompiled, tmp_path, capsys):
    out_file = tmp_path / "lint.json"
    assert cmd_lint(["--unchecked", miscompiled, "--format", "json",
                     "-o", str(out_file)]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == 1
    assert doc["counts"]["error"] == 3
    assert "analysis" in doc
    assert json.loads(out_file.read_text()) == doc


def test_lint_sarif_report(miscompiled, tmp_path, capsys):
    out_file = tmp_path / "lint.sarif"
    assert cmd_lint(["--unchecked", miscompiled, "--format", "sarif",
                     "-o", str(out_file)]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["tool"]["driver"]["name"] == "harbor-lint"
    assert len(doc["runs"][0]["results"]) == 3
    assert json.loads(out_file.read_text()) == doc


def test_lint_umpu_mode(clean_module, capsys):
    assert cmd_lint(["--umpu", clean_module]) == 0
    assert "no findings" in capsys.readouterr().out


def test_main_multiplexer(demo_source, capsys):
    assert main(["run", demo_source, "--entry", "work"]) == 0
    capsys.readouterr()
    assert main(["metrics", demo_source, "--entry", "work"]) == 0
    capsys.readouterr()
    assert main([]) == 64
    assert main(["bogus"]) == 64


NOTED_MODULE = """
f:
    ret
    nop
"""

# ret-less so the raw (--unchecked) image has no HL003 to report: the
# only findings can come from the trailing data word
DATA_MODULE = """
entry:
    ldi r24, 1
spin:
    rjmp spin
.dw 0xFFFF
"""


def test_lint_fail_on_raises_severity_floor(tmp_path, capsys):
    path = tmp_path / "noted.s"
    path.write_text(NOTED_MODULE)
    # dead code is a note: clean by default, a failure under --fail-on
    assert cmd_lint([str(path)]) == 0
    assert "HL010" in capsys.readouterr().out
    assert cmd_lint(["--fail-on", "note", str(path)]) == 1
    assert cmd_lint(["--fail-on", "warning", str(path)]) == 0


def test_lint_missing_file_is_an_internal_error(capsys):
    assert cmd_lint(["/nonexistent/module.s"]) == 2
    assert "error" in capsys.readouterr().err


def test_lint_bad_data_span_spec_is_an_internal_error(tmp_path, capsys):
    path = tmp_path / "data.s"
    path.write_text(DATA_MODULE)
    assert cmd_lint(["--unchecked", str(path),
                     "--data-span", "data:nonsense"]) == 2
    assert "bad --data-span" in capsys.readouterr().err


def test_lint_data_span_excludes_data_words(tmp_path, capsys):
    path = tmp_path / "data.s"
    path.write_text(DATA_MODULE)
    # the trailing .dw 0xFFFF does not decode: HL011 without annotation
    assert cmd_lint(["--unchecked", str(path)]) == 1
    assert "HL011" in capsys.readouterr().out
    # annotated as data (module-relative offsets) the image lints clean
    assert cmd_lint(["--unchecked", str(path),
                     "--data-span", "data:4-6"]) == 0
    out = capsys.readouterr().out
    assert "HL011" not in out
    assert "no findings" in out


def test_opt_elides_and_writes_manifest(tmp_path, capsys):
    from repro.analysis.static.elision import ElisionManifest
    out = tmp_path / "logger.manifest.json"
    code = cmd_opt(["examples/modules/static_logger.s:"
                    "logger_fill,logger_set,logger_tally",
                    "--static-data", "256", "-o", str(out)])
    assert code == 0
    text = capsys.readouterr().out
    assert "elided" in text
    assert "no findings" in text
    manifest = ElisionManifest.load(str(out))
    assert manifest.elided_checks >= 2
    assert manifest.schema == 1


def test_opt_missing_file_is_an_internal_error(capsys):
    assert cmd_opt(["/nonexistent/module.s"]) == 2
    assert "error" in capsys.readouterr().err


def test_main_multiplexes_opt(tmp_path, capsys):
    out = tmp_path / "m.json"
    assert main(["opt", "examples/modules/static_logger.s:"
                 "logger_fill,logger_set,logger_tally",
                 "--static-data", "256", "-o", str(out)]) == 0
    assert out.exists()


# ---------------------------------------------------------------------
# harbor-lint --select / --ignore


def test_lint_select_narrows_report_and_gate(miscompiled, capsys):
    # all three errors report by default (exit 1)
    assert cmd_lint(["--unchecked", miscompiled]) == 1
    capsys.readouterr()
    # selecting one rule narrows both the report and the gate
    assert cmd_lint(["--unchecked", miscompiled,
                     "--select", "HL001"]) == 1
    out = capsys.readouterr().out
    assert "HL001" in out
    assert "HL002" not in out and "HL003" not in out
    assert "1 finding(s)" in out


def test_lint_select_accepts_slugs_and_commas(miscompiled, capsys):
    assert cmd_lint(["--unchecked", miscompiled,
                     "--select", "unchecked-store,HL002"]) == 1
    out = capsys.readouterr().out
    assert "HL001" in out and "HL002" in out
    assert "HL003" not in out


def test_lint_ignore_drops_rules_from_gate(miscompiled, capsys):
    # ignoring every firing rule flips the exit code to 0
    assert cmd_lint(["--unchecked", miscompiled,
                     "--ignore", "HL001,HL002",
                     "--ignore", "missing-restore-ret"]) == 0
    assert "no findings" in capsys.readouterr().out


def test_lint_select_unknown_rule_is_an_internal_error(miscompiled,
                                                       capsys):
    assert cmd_lint(["--unchecked", miscompiled,
                     "--select", "HL999"]) == 2
    assert "unknown lint rule" in capsys.readouterr().err


def test_lint_select_preserves_fail_on_contract(tmp_path, capsys):
    path = tmp_path / "noted.s"
    path.write_text(NOTED_MODULE)
    # HL010 (note) selected: reported, but only --fail-on note gates
    assert cmd_lint([str(path), "--select", "HL010"]) == 0
    assert "HL010" in capsys.readouterr().out
    assert cmd_lint([str(path), "--select", "HL010",
                     "--fail-on", "note"]) == 1


# ---------------------------------------------------------------------
# harbor-certify


def test_certify_clean_module_exits_zero(capsys):
    assert cmd_certify(["examples/modules/clean_sensor.s"]) == 0
    out = capsys.readouterr().out
    assert "no findings" in out
    assert "clean_sensor: certified" in out
    assert "symbolically proved" in out


def test_certify_elided_module_exits_zero(capsys):
    assert cmd_certify(["examples/modules/static_logger.s:"
                        "logger_fill,logger_set,logger_tally",
                        "--elide", "--static-data", "256"]) == 0
    out = capsys.readouterr().out
    assert "static_logger: certified" in out
    assert "0 elided site(s)" not in out


def test_certify_unchecked_miscompiled_fails_hl017(miscompiled,
                                                   capsys):
    assert cmd_certify(["--unchecked", miscompiled]) == 1
    out = capsys.readouterr().out
    assert "HL017" in out
    assert "REJECTED" in out


def test_certify_json_report_and_artifact(tmp_path, capsys):
    out = tmp_path / "certify.json"
    report = tmp_path / "jit.json"
    assert cmd_certify(["examples/modules/clean_sensor.s",
                        "--format", "json", "-o", str(out),
                        "--report", str(report)]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["analysis"]["certified"] is True
    assert doc["analysis"]["translatable_blocks"] > 0
    saved = json.loads(out.read_text())
    assert saved["analysis"]["certified"] is True
    jit = json.loads(report.read_text())
    assert jit["schema"] == 1
    assert jit["modules"][0]["module"] == "clean_sensor"
    assert jit["modules"][0]["ok"] is True


def test_certify_sarif_contains_hl017_rule(miscompiled, capsys):
    assert cmd_certify(["--unchecked", miscompiled,
                        "--format", "sarif"]) == 1
    doc = json.loads(capsys.readouterr().out)
    results = doc["runs"][0]["results"]
    assert any(r["ruleId"] == "HL017" for r in results)


def test_certify_missing_file_is_an_internal_error(capsys):
    assert cmd_certify(["/nonexistent/module.s"]) == 2
    assert "error" in capsys.readouterr().err


def test_main_multiplexes_certify(capsys):
    assert main(["certify", "examples/modules/clean_sensor.s"]) == 0
    assert "certified" in capsys.readouterr().out
