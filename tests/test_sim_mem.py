"""Data transfer: loads/stores (all addressing modes), stack, I/O, lpm."""

import pytest

from repro.asm import assemble
from repro.sim import InvalidAccess, Machine, Memory


def machine(src):
    return Machine(assemble(src + "\n    break\n"))


# ---------------------------------------------------------------------
# direct and indirect loads/stores
# ---------------------------------------------------------------------
def test_lds_sts():
    m = machine("""
        ldi r16, 0x5A
        sts 0x0123, r16
        lds r17, 0x0123
    """)
    m.run()
    assert m.memory.read_data(0x0123) == 0x5A
    assert m.core.reg(17) == 0x5A


def test_st_ld_x_modes():
    m = machine("""
        ldi r26, 0x00
        ldi r27, 0x02       ; X = 0x0200
        ldi r16, 1
        ldi r17, 2
        st X+, r16          ; [0x200] = 1, X = 0x201
        st X, r17           ; [0x201] = 2
        ld r18, -X          ; X = 0x200, r18 = 1
        ld r19, X+          ; r19 = 1, X = 0x201
        ld r20, X           ; r20 = 2
    """)
    m.run()
    assert m.memory.read_data(0x200) == 1
    assert m.memory.read_data(0x201) == 2
    assert m.core.reg(18) == 1
    assert m.core.reg(19) == 1
    assert m.core.reg(20) == 2
    assert m.core.reg_pair(26) == 0x0201


def test_st_pre_decrement():
    m = machine("""
        ldi r26, 0x02
        ldi r27, 0x02       ; X = 0x0202
        ldi r16, 0xAB
        st -X, r16          ; [0x201] = 0xAB
    """)
    m.run()
    assert m.memory.read_data(0x201) == 0xAB
    assert m.core.reg_pair(26) == 0x0201


def test_std_ldd_displacement():
    m = machine("""
        ldi r28, 0x00
        ldi r29, 0x03       ; Y = 0x0300
        ldi r16, 0x42
        std Y+5, r16
        ldd r17, Y+5
        ldi r30, 0x10
        ldi r31, 0x03       ; Z = 0x0310
        std Z+63, r16
        ldd r18, Z+63
    """)
    m.run()
    assert m.memory.read_data(0x305) == 0x42
    assert m.core.reg(17) == 0x42
    assert m.memory.read_data(0x310 + 63) == 0x42
    assert m.core.reg(18) == 0x42
    # displacement does not move the pointer
    assert m.core.reg_pair(28) == 0x0300
    assert m.core.reg_pair(30) == 0x0310


def test_ld_st_through_y_z_post_inc():
    m = machine("""
        ldi r28, 0x00
        ldi r29, 0x04
        ldi r16, 7
        st Y+, r16
        st Y+, r16
        ldi r30, 0x00
        ldi r31, 0x04
        ld r17, Z+
        ld r18, Z+
    """)
    m.run()
    assert m.core.reg(17) == 7 and m.core.reg(18) == 7
    assert m.core.reg_pair(28) == 0x0402
    assert m.core.reg_pair(30) == 0x0402


# ---------------------------------------------------------------------
# registers are memory-mapped at 0x00..0x1F
# ---------------------------------------------------------------------
def test_registers_visible_in_data_space():
    m = machine("""
        ldi r16, 0x77
        lds r17, 16         ; read r16 through the data space
    """)
    m.run()
    assert m.core.reg(17) == 0x77


# ---------------------------------------------------------------------
# stack
# ---------------------------------------------------------------------
def test_push_pop():
    m = machine("""
        ldi r16, 0x11
        ldi r17, 0x22
        push r16
        push r17
        pop r18
        pop r19
    """)
    m.run()
    assert m.core.reg(18) == 0x22
    assert m.core.reg(19) == 0x11
    assert m.memory.sp == m.geometry.ramend


def test_push_decrements_sp():
    m = machine("    push r0\n")
    sp0 = m.memory.sp
    m.run()
    assert m.memory.sp == sp0 - 1
    assert m.memory.read_data(sp0) == 0


# ---------------------------------------------------------------------
# I/O
# ---------------------------------------------------------------------
def test_in_out_roundtrip():
    m = machine("""
        ldi r16, 0xA5
        out 0x15, r16
        in r17, 0x15
    """)
    m.run()
    assert m.core.reg(17) == 0xA5
    assert m.memory.read_data(0x15 + 0x20) == 0xA5


def test_out_spl_changes_sp():
    m = machine("""
        ldi r16, 0x34
        out SPL, r16
        ldi r16, 0x02
        out SPH, r16
    """)
    m.run()
    assert m.memory.sp == 0x0234


def test_sbi_cbi():
    m = machine("""
        sbi 0x10, 3
        sbi 0x10, 0
        cbi 0x10, 3
    """)
    m.run()
    assert m.memory.read_data(0x10 + 0x20) == 0b0000_0001


def test_io_device_hook():
    class Dev:
        def __init__(self):
            self.written = None

        def io_read(self, addr):
            return 0x99

        def io_write(self, addr, value):
            self.written = value

    m = machine("""
        in r16, 0x08
        ldi r17, 0x42
        out 0x08, r17
    """)
    dev = Dev()
    m.memory.io_devices[0x08 + 0x20] = dev
    m.run()
    assert m.core.reg(16) == 0x99
    assert dev.written == 0x42


# ---------------------------------------------------------------------
# program memory reads
# ---------------------------------------------------------------------
def test_lpm_variants():
    m = machine("""
        ldi r30, lo8(table)
        ldi r31, hi8(table)
        lpm r16, Z+
        lpm r17, Z+
        lpm                 ; r0 <- [Z]
        rjmp done
    table:
    .db 0x0A, 0x0B, 0x0C, 0x0D
    done:
    """)
    m.run()
    assert m.core.reg(16) == 0x0A
    assert m.core.reg(17) == 0x0B
    assert m.core.reg(0) == 0x0C


# ---------------------------------------------------------------------
# raw memory model
# ---------------------------------------------------------------------
def test_memory_word_helpers():
    mem = Memory()
    mem.write_word_data(0x100, 0xBEEF)
    assert mem.read_data(0x100) == 0xEF
    assert mem.read_data(0x101) == 0xBE
    assert mem.read_word_data(0x100) == 0xBEEF


def test_memory_bounds():
    mem = Memory()
    with pytest.raises(InvalidAccess):
        mem.read_data(0x1000)
    with pytest.raises(InvalidAccess):
        mem.write_data(-1, 0)
    with pytest.raises(InvalidAccess):
        mem.read_flash_word(1 << 20)


def test_flash_byte_access():
    mem = Memory()
    mem.write_flash_word(0x10, 0xBEEF)
    assert mem.read_flash_byte(0x20) == 0xEF   # low byte at even address
    assert mem.read_flash_byte(0x21) == 0xBE


def test_fill_data():
    mem = Memory()
    mem.fill_data(0x200, b"\x01\x02\x03")
    assert mem.read_data(0x202) == 3


def test_elpm_reads_upper_flash_bank():
    """ELPM with RAMPZ=1 reads beyond the 64 KiB lpm window (the
    ATmega103's 128 KiB flash needs it)."""
    m = machine("""
        ldi r16, 1
        out 0x3B, r16       ; RAMPZ = 1
        ldi r30, 0x10
        ldi r31, 0x00       ; Z = 0x0010 -> flash byte 0x10010
        elpm r20, Z+
        elpm r21, Z
        elpm                ; r0 <- [RAMPZ:Z]
    """)
    m.memory.write_flash_word(0x10010 >> 1, 0xBBAA)
    m.run()
    assert m.core.reg(20) == 0xAA
    assert m.core.reg(21) == 0xBB
    assert m.core.reg(0) == 0xBB


def test_elpm_post_increment_carries_into_rampz():
    m = machine("""
        ldi r30, 0xFF
        ldi r31, 0xFF       ; Z = 0xFFFF, RAMPZ = 0
        elpm r20, Z+        ; reads 0x0FFFF, Z wraps, RAMPZ -> 1
        elpm r21, Z         ; reads 0x10000
    """)
    m.memory.write_flash_word(0xFFFE >> 1, 0x11 << 8)   # byte 0xFFFF
    m.memory.write_flash_word(0x10000 >> 1, 0x22)        # byte 0x10000
    m.run()
    assert m.core.reg(20) == 0x11
    assert m.core.reg(21) == 0x22
    assert m.memory.read_data(0x3B + 0x20) == 1
