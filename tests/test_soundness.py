"""Adversarial soundness: snapshot/restore, the write oracle, the
hostile-module fuzzer, and regression tests for the bugs the campaign
exists to catch (named by escape family)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.static.elision import (
    MANIFEST_ATTACKS,
    corrupt_manifest,
    verify_manifest,
)
from repro.asm import assemble
from repro.core.faults import ProtectionFault
from repro.sfi.layout import SfiLayout
from repro.sfi.system import LoadedModule, SfiSystem
from repro.sim import MachineSnapshot
from repro.sim.errors import InvalidAccess, SimError
from repro.sim.memory import Memory
from repro.soundness import Campaign, HostileModuleGenerator, \
    SfiWriteOracle
from repro.soundness.triage import minimize_source
from repro.trace import uninstall
from repro.trace.metrics import MetricsRegistry
from repro.umpu.system import UmpuSystem


# ---------------------------------------------------------------------------
# escape family: store-boundary — word writes tearing at the data edge

def test_write_word_data_no_tear_at_data_end():
    """A word write whose high byte falls off the data space must not
    land its low byte first (all-or-nothing, like fill_data)."""
    mem = Memory()
    end = mem.geometry.data_end
    mem.data[end] = 0x11
    with pytest.raises(InvalidAccess):
        mem.write_word_data(end, 0xBEEF)
    assert mem.data[end] == 0x11        # low byte did not tear in

    mem.write_word_data(end - 1, 0xBEEF)
    assert mem.data[end - 1] == 0xEF
    assert mem.data[end] == 0xBE


def test_set_reg_pair_no_tear_at_data_end():
    mem = Memory()
    end = mem.geometry.data_end
    mem.data[end] = 0x22
    with pytest.raises(InvalidAccess):
        mem.set_reg_pair(end, 0xCAFE)
    assert mem.data[end] == 0x22

    with pytest.raises(InvalidAccess):
        mem.set_reg_pair(-1, 0xCAFE)

    mem.set_reg_pair(26, 0x1234)        # the normal X-pair case
    assert mem.reg_pair(26) == 0x1234


# ---------------------------------------------------------------------------
# escape family: global-state — process-global mutable state leaks

def test_forensics_recent_reports_reset():
    from repro.trace import forensics
    forensics.RECENT_REPORTS.append(object())
    forensics.reset()
    assert len(forensics.RECENT_REPORTS) == 0


def test_metrics_registry_reset():
    registry = MetricsRegistry()
    registry.counter("sim.a").inc()
    assert len(registry) > 0
    assert registry.reset() is registry
    assert len(registry) == 0


# ---------------------------------------------------------------------------
# snapshot/restore

MODULE_FAULTING = """\
main:
    ldi r18, 42
    ldi r26, 0x00
    ldi r27, 0x0b
    sts 0x0b00, r18
loop:
    st X+, r18
    rjmp loop
"""


def _prepared_sfi():
    system = SfiSystem()
    oracle = SfiWriteOracle(system)
    system.machine.bus.add_interposer(oracle)
    program = assemble(MODULE_FAULTING, symbols=system.kernel_symbols())
    system.load_module(program, "mod", exports=("main",))
    return system, oracle, system.snapshot()


_SFI_CACHE = {}


def _sfi():
    if not _SFI_CACHE:
        _SFI_CACHE["v"] = _prepared_sfi()
    return _SFI_CACHE["v"]


def _state_sig(machine):
    core = machine.core
    return (core.pc, core.cycles, core.instret, core.halted,
            bytes(machine.memory.data))


def _run_budget(system, oracle, snap, budget, trace):
    """Restore, then run the faulting workload under a cycle budget on
    the selected execution path; returns (outcome, log, state)."""
    system.restore(snap)
    oracle.clear()
    if trace:
        system.machine.attach_trace()
    try:
        system.call_export("mod", "main", max_cycles=budget)
        outcome = "ok"
    except ProtectionFault as fault:
        outcome = type(fault).__name__
        system.recover()
    except SimError as err:
        outcome = type(err).__name__
    finally:
        if trace:
            uninstall(system.machine)
    return outcome, list(oracle.log), _state_sig(system.machine)


@settings(deadline=None, max_examples=15)
@given(budget=st.integers(min_value=8, max_value=4000))
def test_restore_then_run_identical_on_both_paths(budget):
    """restore(snapshot) + N cycles is write-log- and state-identical
    on the fast loop and the step() path — including across the
    contained fault + recovery the workload is built to hit."""
    system, oracle, snap = _sfi()
    fast = _run_budget(system, oracle, snap, budget, trace=False)
    step = _run_budget(system, oracle, snap, budget, trace=True)
    again = _run_budget(system, oracle, snap, budget, trace=False)
    assert fast == step
    assert fast == again                # restore is deterministic


def test_sfi_system_snapshot_restores_loader_state():
    system = SfiSystem()
    program = assemble("main:\n    ldi r24, 1\n    ret\n",
                       symbols=system.kernel_symbols())
    system.load_module(program, "first", exports=("main",))
    snap = system.snapshot()
    program2 = assemble("main:\n    ldi r24, 2\n    ret\n",
                        symbols=system.kernel_symbols())
    system.load_module(program2, "second", exports=("main",))
    assert set(system.modules) == {"first", "second"}
    system.restore(snap)
    assert set(system.modules) == {"first"}
    ret, _ = system.call_export("first", "main")
    assert ret == 1
    # the freed domain is reusable after restore
    system.load_module(program2, "third", exports=("main",))
    ret, _ = system.call_export("third", "main")
    assert ret == 2


def test_umpu_snapshot_restores_hardware_state():
    system = UmpuSystem()
    snap = system.snapshot()
    machine = system.machine
    before = (machine.regs.cur_domain, machine.regs.stack_bound,
              machine.regs.safe_stack_ptr)
    machine.regs.cur_domain = 3
    machine.regs.stack_bound = 0x123
    machine.regs.safe_stack_ptr ^= 0x10
    machine.tracker.call_depths.append(99)
    system.restore(snap)
    assert (machine.regs.cur_domain, machine.regs.stack_bound,
            machine.regs.safe_stack_ptr) == before
    assert 99 not in machine.tracker.call_depths


def test_machine_snapshot_requires_system_capture():
    system = SfiSystem()
    snap = MachineSnapshot.capture(system.machine)
    with pytest.raises(ValueError):
        snap.apply_system(system)


# ---------------------------------------------------------------------------
# the write oracle: planted-escape detector sanity

def test_oracle_flags_unverified_module_store():
    """Bypass the admission pipeline entirely (simulating a verifier
    hole) and install a module that raw-stores into a trusted cell:
    the oracle must flag the landed write as an escape."""
    system = SfiSystem()
    oracle = SfiWriteOracle(system)
    system.machine.bus.add_interposer(oracle)
    evil = assemble("main:\n"
                    "    ldi r18, 5\n"
                    "    sts 0x{:04x}, r18\n"
                    "    ret\n".format(system.layout.scratch))
    start = system._next_load
    for word, value in evil.words.items():
        system.machine.memory.write_flash_word(start // 2 + word, value)
    system.machine.core.invalidate_decode_cache()
    entry = system.linker.export(0, "main", start)
    system._flush_jump_table()
    system.modules["evil"] = LoadedModule(
        name="evil", domain=0, start=start,
        end=start + evil.size_bytes, exports={"main": entry},
        rewrite_stats={}, verify_report=None)
    system.call_export("evil", "main")
    assert oracle.escapes, "planted raw store must be flagged"
    record = oracle.escapes[0]
    assert record.addr == system.layout.scratch
    assert record.rule == "UntrustedAccessFault"


def test_oracle_quiet_on_verified_module():
    system, oracle, snap = _prepared_sfi()
    try:
        system.call_export("mod", "main", max_cycles=20000)
    except (ProtectionFault, SimError):
        system.recover()
    assert oracle.escapes == []


# ---------------------------------------------------------------------------
# escape family: manifest-forgery

def test_every_manifest_attack_is_rejected():
    layout = SfiLayout(static_data_bytes=256, static_data_domains=2)
    system = SfiSystem(layout)
    lo, hi = layout.static_data_span(0)
    source = ("main:\n"
              "    ldi r18, 9\n"
              "    sts 0x{:04x}, r18\n"
              "    sts 0x{:04x}, r18\n"
              "    ret\n".format(lo, hi - 1))
    program = assemble(source, symbols=system.kernel_symbols())
    module = system.load_module(program, "el", exports=("main",),
                                elide=True)
    assert module.manifest is not None and module.manifest.sites
    read = system.machine.memory.read_flash_word
    entries = sorted(system.linker._by_name[(module.domain, n)].target
                     for n in module.exports)
    # the genuine manifest re-proves...
    assert verify_manifest(read, layout, system.runtime.symbols,
                           module.manifest, entries=entries) == []
    # ...and every corruption of it is rejected
    rng = random.Random(1234)
    for attack in MANIFEST_ATTACKS:
        forged = corrupt_manifest(module.manifest, attack, rng)
        problems = verify_manifest(read, layout, system.runtime.symbols,
                                   forged, entries=entries)
        assert problems, "attack {!r} was accepted".format(attack)


# ---------------------------------------------------------------------------
# campaign smokes

def test_sfi_campaign_smoke_zero_escapes():
    campaign = Campaign("sfi", seed=11)
    stats = campaign.run(48)
    assert stats.escapes == []
    assert stats.executed > 0
    assert set(stats.families) == {"store-boundary", "control-flow",
                                   "encoding", "manifest-forgery",
                                   "jump-table-abuse"}


def test_umpu_campaign_smoke_zero_escapes():
    campaign = Campaign("umpu", seed=11)
    stats = campaign.run(48)
    assert stats.escapes == []
    assert stats.executed > 0


def test_campaign_same_seed_is_deterministic():
    first = Campaign("sfi", seed=5)
    second = Campaign("sfi", seed=5)
    assert first.run(24).to_dict() == second.run(24).to_dict()
    gen = HostileModuleGenerator(5, first.layout,
                                 first.system.kernel_symbols())
    for index in (0, 1, 3, 5):
        a = gen.generate(index)
        b = first.generator.generate(index)
        assert (a.source, a.family) == (b.source, b.family)


def test_campaign_different_seed_differs():
    layout = SfiLayout(static_data_bytes=256, static_data_domains=2)
    gen_a = HostileModuleGenerator(1, layout)
    gen_b = HostileModuleGenerator(2, layout)
    assert any(gen_a.generate(i).source != gen_b.generate(i).source
               for i in (0, 4, 8))


# ---------------------------------------------------------------------------
# triage

def test_minimize_source_shrinks_to_culprit():
    source = ("    nop\n"
              "    ldi r18, 1\n"
              "    sts 0x0060, r18\n"
              "    nop\n"
              "    ret\n")

    def still_fails(text):
        return "sts 0x0060" in text

    minimized = minimize_source(source, still_fails)
    assert "sts 0x0060" in minimized
    assert len(minimized.splitlines()) < len(source.splitlines())
    assert still_fails(minimized)


def test_dump_escape_writes_artifacts(tmp_path):
    from repro.soundness import dump_escape
    escape = {"candidate": {"index": 7, "family": "store-boundary",
                            "seed": 3, "source": "main:\n    ret\n"},
              "reasons": [{"kind": "oracle"}]}
    path = dump_escape(str(tmp_path), escape, reports=[])
    assert (tmp_path / "escape-000007-store-boundary.json").exists()
    assert (tmp_path / "escape-000007-store-boundary.asm").read_text() \
        == "main:\n    ret\n"
    import json
    with open(path) as fh:
        payload = json.load(fh)
    assert payload["candidate"]["index"] == 7
    assert payload["fault_reports"] == []


# ---------------------------------------------------------------------------
# escape-bug burn-down: regressions for every confirmed campaign escape,
# named by escape family (docs/soundness.md "Escape triage" step 4)

def _verify_raw(system, src):
    """Assemble *src* against the runtime symbols (so it can name the
    hb_* stubs directly, bypassing the rewriter) and verify it."""
    from repro.asm import Assembler
    prog = Assembler(symbols=system.runtime.symbols).assemble(src, "raw")
    lo, hi = prog.extent()
    return system.verifier.verify(prog, lo * 2, (hi + 1) * 2)


def _raw_rejected(system, src, rule):
    from repro.sfi.verifier import VerifyError
    with pytest.raises(VerifyError) as exc:
        _verify_raw(system, src)
    assert exc.value.rule == rule, str(exc.value)
    return exc.value


# --- control-flow: safe-stack save/restore desync (campaign seed 2007,
# --- sfi indices 493/3185/3537) --------------------------------------------

ESCAPE_493_SHAPE = """\
main:
    ldi r20, 3
rec:
    dec r20
    breq done
    rcall rec
done:
    ret
"""


def test_control_flow_fall_into_head_recursion_now_sound():
    """The first confirmed escape: ``rec`` is an rcall target *and*
    reachable by fall-through, so the inserted prologue used to run
    without a call frame, spooling garbage to the safe stack until a
    desynced restore handed back a bogus domain/stack bound.  The
    rewriter now hops the sequential path over the prologue (entry
    guard) and the module runs contained."""
    system = SfiSystem()
    oracle = SfiWriteOracle(system)
    system.machine.bus.add_interposer(oracle)
    module = system.load_module(assemble(ESCAPE_493_SHAPE), "r493",
                                exports=("main",))
    assert module.rewrite_stats["entry_guards"] >= 1
    system.call_export("r493", "main", max_cycles=20000)
    assert oracle.escapes == []


def test_control_flow_legit_self_recursion_still_admits():
    system = SfiSystem()
    oracle = SfiWriteOracle(system)
    system.machine.bus.add_interposer(oracle)
    src = """\
main:
    ldi r20, 4
    rcall rec
    ret
rec:
    dec r20
    breq out
    rcall rec
out:
    ret
"""
    system.load_module(assemble(src), "rec", exports=("main",))
    system.call_export("rec", "main", max_cycles=20000)
    assert oracle.escapes == []


def test_control_flow_fall_through_prologue_rejected_hl015():
    """Verifier-level root cause: a hand-built image (as the encoding
    family emits, no rewriter involved) whose prologue is reachable by
    fall-through must be rejected."""
    _raw_rejected(SfiSystem(), """\
f:
    call hb_save_ret
    dec r20
    call hb_save_ret
    call hb_restore_ret
    ret
""", "HL015")


def test_control_flow_jump_into_prologue_rejected_hl015():
    _raw_rejected(SfiSystem(), """\
f:
    call hb_save_ret
    rjmp p
p:
    call hb_save_ret
    call hb_restore_ret
    ret
""", "HL015")


def test_control_flow_call_return_edge_into_prologue_rejected_hl015():
    """A call's return resumes at the next instruction — landing there
    on a prologue re-executes hb_save_ret without a fresh frame."""
    _raw_rejected(SfiSystem(), """\
f:
    call hb_save_ret
    rcall g
    call hb_save_ret
    call hb_restore_ret
    ret
g:
    call hb_save_ret
    call hb_restore_ret
    ret
""", "HL015")


def test_control_flow_internal_call_must_enter_prologue_hl015():
    _raw_rejected(SfiSystem(), """\
f:
    call hb_save_ret
    rcall mid
    call hb_restore_ret
    ret
mid:
    nop
    call hb_restore_ret
    ret
""", "HL015")


def test_control_flow_skip_to_ret_rejected_hl003():
    """cpse leaps over the 2-word restore call and lands on the bare
    ret — the dynamic edge the linear predecessor rule can't see."""
    _raw_rejected(SfiSystem(), """\
f:
    call hb_save_ret
    cpse r18, r18
    call hb_restore_ret
    ret
""", "HL003")


# --- encoding: stack-pointer drift (campaign seed 2007, sfi index 518) -----

#: the escaping word stream verbatim from the campaign artifact —
#: disassembles to ldi/ldi/ldi, pop, pop, ret, st X, ldi, ret: the pops
#: drift SP above the frame so hb_restore_ret rewrites (and the ret
#: consumes) a caller-owned stack slot
ESCAPE_518_WORDS = {0: 59041, 1: 57520, 2: 58666, 3: 37167, 4: 37167,
                    5: 38152, 6: 37676, 7: 59041, 8: 38152}


def test_encoding_escape_518_word_stream_rejected():
    from repro.asm.program import Program
    from repro.sfi.rewriter import RewriteError
    system = SfiSystem()
    prog = Program(words=dict(ESCAPE_518_WORDS), symbols={"main": 0},
                   source_name="<fz518>")
    with pytest.raises(RewriteError) as exc:
        system.load_module(prog, "fz518", exports=("main",))
    assert "pop without a matching push" in str(exc.value)


def test_encoding_pop_underflow_rejected_at_rewrite():
    from repro.sfi.rewriter import RewriteError
    system = SfiSystem()
    src = "main:\n    pop r18\n    pop r18\n    ret\n"
    with pytest.raises(RewriteError):
        system.load_module(assemble(src), "drift", exports=("main",))


def test_encoding_pop_underflow_rejected_at_verify_hl016():
    _raw_rejected(SfiSystem(), """\
f:
    call hb_save_ret
    pop r18
    pop r18
    call hb_restore_ret
    ret
""", "HL016")


def test_encoding_loop_shaped_pop_smuggle_rejected_hl016():
    """Linearly balanced, dynamically a drain: each loop iteration pops
    twice but pushed only once in total."""
    _raw_rejected(SfiSystem(), """\
f:
    call hb_save_ret
    push r18
    push r18
l:
    pop r18
    pop r18
    brne l
    call hb_restore_ret
    ret
""", "HL016")


def test_encoding_restore_at_nonzero_depth_rejected_hl016():
    _raw_rejected(SfiSystem(), """\
f:
    call hb_save_ret
    push r18
    call hb_restore_ret
    ret
""", "HL016")


def test_caller_saved_register_pattern_still_verifies():
    """The depth rule must admit ordinary compiled code: caller-saved
    registers held across a branch, balanced at the restore."""
    system = SfiSystem()
    report = _verify_raw(system, """\
f:
    call hb_save_ret
    push r16
    cpi r24, 3
    breq done
    inc r16
done:
    pop r16
    call hb_restore_ret
    ret
""")
    assert report.rets == 1
