"""Whole-image static analyzer: CFG, abstract interpretation, the four
analyses, the diagnostics engine and the strict load-time lint gate.

The acceptance-critical properties pinned here:

* a module that survives the rewrite -> linear-verify pipeline also
  lints clean (hypothesis property test);
* a miscompiled module reports HL001 + HL002 + HL003 with stable codes;
* the static per-domain safe-stack bound covers the runtime high-water
  mark the metrics registry records on the benchmark workload;
* the CFG analysis catches a restore-stub bypass the linear verifier's
  constant state cannot see.
"""

import json
import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.microbench import build_umpu_bench
from repro.analysis.static import (
    DiagnosticsEngine,
    ImageModel,
    ModuleRegion,
    RULES,
    analyze_image,
    lint_system,
    rule,
    write_report,
)
from repro.analysis.static.cfg import (
    RegionCFG,
    build_call_graph,
    find_cycles,
    max_call_depth,
    partition_functions,
)
from repro.asm import Assembler, assemble
from repro.asm.assembler import default_symbols
from repro.core.control_flow import JumpTable
from repro.core.faults import MemMapFault
from repro.sfi.layout import SfiLayout
from repro.sfi.system import SfiSystem
from repro.sfi.verifier import VerifyError


MODULE = """
.equ KERNEL_NOOP = {KERNEL_NOOP}

fill:                       ; r24:25 = address, r22 = value
    movw r26, r24
    st X+, r22
    st X, r22
    ret

ping:
    call KERNEL_NOOP
    ret

orphan:                     ; never exported, never called
    inc r24
    ret
"""


def load(system, name="mod", exports=("fill", "ping")):
    src = MODULE.format(**{k: hex(v)
                           for k, v in system.kernel_symbols().items()})
    return system.load_module(assemble(src, name), name, exports=exports)


def place_raw(system, source, name="raw", domain=0, symbols=None):
    """Write an unrewritten, unverified module straight into flash (what
    ``harbor-lint --unchecked`` does) and return its ModuleRegion."""
    if symbols:
        prog = Assembler(symbols=symbols).assemble(source, name)
    else:
        prog = assemble(source, name)
    lo, hi = prog.extent()
    base = system._next_load
    mem = system.machine.memory
    for word_addr, value in prog.words.items():
        mem.write_flash_word(base // 2 + word_addr - lo, value)
    system.machine.core.invalidate_decode_cache()
    end = base + (hi - lo + 1) * 2
    predefined = set(default_symbols())
    entries = {n: base + a - lo * 2 for n, a in prog.symbols.items()
               if n not in predefined and lo * 2 <= a <= hi * 2 + 1}
    system._next_load = (end + 0xFF) & ~0xFF
    return ModuleRegion(name=name, domain=domain, start=base, end=end,
                        policy="sfi", entries=entries), prog


# =====================================================================
# CFG construction and the call graph
# =====================================================================
CFG_SRC = """
f:
    ldi r24, 3
loop:
    dec r24
    brne loop
    call g
    ret
g:
    ret
"""


def _cfg_of(source, entries):
    prog = assemble(source, "t")
    lo, hi = prog.extent()
    read = lambda i: prog.words.get(i, 0xFFFF)          # noqa: E731
    cfg = RegionCFG.build(read, lo * 2, (hi + 1) * 2, name="t",
                          extra_leaders=[prog.symbols[e] for e in entries])
    return prog, cfg


def test_cfg_blocks_edges_and_calls():
    prog, cfg = _cfg_of(CFG_SRC, ("f", "g"))
    loop = prog.symbols["loop"]
    assert loop in cfg.blocks
    # the brne block both falls through and loops back
    assert set(cfg.blocks[loop].succs) >= {loop}
    [site] = cfg.calls
    assert site.target == prog.symbols["g"]
    assert not cfg.bad_targets
    assert not cfg.undecodable


def test_partition_functions_flow_based():
    prog, cfg = _cfg_of(CFG_SRC, ("f", "g"))
    f, g = prog.symbols["f"], prog.symbols["g"]
    functions = partition_functions(cfg, {f, g})
    assert prog.symbols["loop"] in functions[f].blocks
    assert functions[g].blocks == {g}
    # the call site belongs to f, not g
    assert [s.target for s in functions[f].calls] == [g]
    assert functions[g].calls == []
    graph = build_call_graph(functions)
    assert graph[f] == {g}
    assert find_cycles(graph) == []
    assert max_call_depth(graph, f, set()) == 2


def test_recursion_is_detected_and_unbounded():
    prog, cfg = _cfg_of("r:\n    call r\n    ret\n", ("r",))
    r = prog.symbols["r"]
    functions = partition_functions(cfg, {r})
    graph = build_call_graph(functions)
    cycles = find_cycles(graph)
    assert cycles and r in cycles[0]
    assert max_call_depth(graph, r, {r}) is None


# =====================================================================
# Analysis on a clean, properly loaded image
# =====================================================================
def test_clean_image_lints_clean():
    system = SfiSystem()
    load(system)
    _model, report = lint_system(system, dead_code=False)
    assert not report.diagnostics.findings
    stack = report.stack
    assert stack.bound_bytes is not None
    assert stack.bound_bytes <= stack.capacity
    assert stack.covers(0)


def test_overhead_estimation_counts_protection_sites():
    system = SfiSystem()
    load(system)
    _model, report = lint_system(system, dead_code=False)
    [over] = [o for o in report.overhead if o.region == "mod"]
    assert over.store_sites == 2          # the two stores in fill
    assert over.xdom_sites == 1           # ping's KERNEL_NOOP call
    assert over.save_sites >= 1 and over.restore_sites >= 1
    exports = {e.name: e for e in over.exports}
    assert exports["fill"].checked_stores == 2
    assert exports["ping"].xdom_calls == 1
    assert exports["fill"].est_cycles >= 2 * 65


def test_dead_code_is_a_note_not_an_error():
    system = SfiSystem()
    load(system)                          # orphan: is not exported
    _model, report = lint_system(system)
    diags = report.diagnostics
    assert not diags.has_errors
    assert "HL010" in diags.codes()
    assert report.dead_blocks["mod"]


# =====================================================================
# Miscompiled module: the acceptance-critical rule triple
# =====================================================================
BROKEN = """
broken:
    ldi r26, 0x00
    ldi r27, 0x0C
    ldi r24, 0x55
    st X+, r24
    call 0x1000
    ret
"""


def _lint_broken():
    system = SfiSystem()
    region, _prog = place_raw(system, BROKEN, name="broken")
    _model, report = lint_system(system, extra_modules=[region])
    return report


def test_miscompiled_module_reports_stable_rule_codes():
    report = _lint_broken()
    diags = report.diagnostics
    assert diags.has_errors
    assert {"HL001", "HL002", "HL003"} <= diags.codes()
    by_code = {d.rule.code: d for d in diags.findings}
    # absint resolved the ldi pair: the store provably hits the safe stack
    assert "safe-stack" in by_code["HL001"].message
    assert "bypasses hb_xdom_call" in by_code["HL002"].message
    assert "hb_restore_ret" in by_code["HL003"].message
    assert all(d.region == "broken" for d in diags.findings
               if d.rule.code in ("HL001", "HL002", "HL003"))


def test_lint_text_output_golden():
    report = _lint_broken()
    text = report.diagnostics.render_text()
    masked = re.sub(r"0x[0-9a-f]{4}", "0xADDR", text)
    for line in masked.splitlines()[:-1]:
        assert re.match(
            r"^(error|warning|note)\s+HL\d{3} \[[a-z-]+\]\s+"
            r"(0xADDR|-)\s+\S+", line), line
    assert masked.splitlines()[-1] == "3 finding(s): 3 error"
    assert "raw store (st X+, r24) not routed through a check stub " \
           "targeting safe-stack (0xADDR)" in masked


def test_lint_json_export_shape(tmp_path):
    report = _lint_broken()
    path = str(tmp_path / "lint.json")
    write_report(path, report.diagnostics, fmt="json",
                 analysis=report.analysis_dict())
    doc = json.loads(open(path).read())
    assert doc["schema"] == 1
    assert doc["counts"]["error"] == 3
    codes = [f["code"] for f in doc["findings"]]
    assert sorted(codes) == ["HL001", "HL002", "HL003"]
    for finding in doc["findings"]:
        assert {"code", "slug", "severity", "message", "byte_addr",
                "region", "domain"} <= set(finding)
    assert "stack" in doc["analysis"]
    assert doc["analysis"]["stack"]["capacity_bytes"] == 256


def test_lint_sarif_export_shape(tmp_path):
    report = _lint_broken()
    path = str(tmp_path / "lint.sarif")
    write_report(path, report.diagnostics, fmt="sarif")
    doc = json.loads(open(path).read())
    assert doc["version"] == "2.1.0"
    [run] = doc["runs"]
    assert run["tool"]["driver"]["name"] == "harbor-lint"
    rules = run["tool"]["driver"]["rules"]
    assert len(run["results"]) == 3
    for result in run["results"]:
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
        assert result["level"] == "error"
        [loc] = result["locations"]
        assert loc["physicalLocation"]["artifactLocation"]["uri"]


def test_rule_catalog_is_stable():
    codes = [r.code for r in RULES]
    assert codes == ["HL{:03d}".format(i + 1) for i in range(len(RULES))]
    assert rule("HL001").slug == "unchecked-store"
    assert rule("unchecked-store").code == "HL001"
    assert rule("HL008").severity == "warning"
    assert rule("HL010").severity == "note"
    with pytest.raises(KeyError):
        rule("HL999")


# =====================================================================
# The CFG analysis is strictly stronger than the linear verifier
# =====================================================================
SNEAKY = """
f:
    cpi r24, 1
    breq landing
    call hb_restore_ret
landing:
    ret
"""


def test_branch_onto_ret_rejected_by_both_verifier_and_lint():
    # the taken branch lands on the ret and skips the restore call.
    # The linear verifier used to miss this (only the whole-image
    # analyzer caught it); since the soundness campaign's save/restore
    # desync burn-down it tracks jump/branch/skip targets too.
    system = SfiSystem()
    prog = Assembler(symbols=system.runtime.symbols).assemble(SNEAKY, "s")
    lo, hi = prog.extent()
    with pytest.raises(VerifyError) as exc:
        system.verifier.verify(prog, lo * 2, (hi + 1) * 2)
    assert exc.value.rule == "HL003"
    assert "bypasses hb_restore_ret" in str(exc.value)
    region, _ = place_raw(system, SNEAKY, name="sneak",
                          symbols=system.runtime.symbols)
    _model, report = lint_system(system, extra_modules=[region])
    hl003 = [d for d in report.diagnostics.findings
             if d.rule.code == "HL003"]
    assert hl003
    assert any("control transfer reaches this ret" in d.message
               for d in hl003)


# =====================================================================
# verify_all: the linear verifier's multi-diagnostic mode (satellite)
# =====================================================================
def test_verifier_fail_fast_carries_rule_code():
    system = SfiSystem()
    prog = assemble(BROKEN, "b")
    lo, hi = prog.extent()
    with pytest.raises(VerifyError) as exc:
        system.verifier.verify(prog, lo * 2, (hi + 1) * 2)
    assert exc.value.rule == "HL001"
    assert exc.value.byte_addr is not None


def test_verify_all_collects_every_violation():
    system = SfiSystem()
    prog = assemble(BROKEN, "b")
    lo, hi = prog.extent()
    engine = system.verifier.verify_all(prog, lo * 2, (hi + 1) * 2)
    assert isinstance(engine, DiagnosticsEngine)
    assert {"HL001", "HL002", "HL003"} <= engine.codes()
    assert len(engine) >= 3
    # collect mode must not leave the verifier stuck in collect mode
    with pytest.raises(VerifyError):
        system.verifier.verify(prog, lo * 2, (hi + 1) * 2)


# =====================================================================
# Property: rewrite + linear verify  =>  whole-image lint clean
# =====================================================================
SAFE_OPS = (
    "    inc r24", "    dec r22", "    add r24, r22", "    ldi r20, 7",
    "    mov r21, r24", "    andi r24, 0x0f", "    lsl r24",
    "    subi r24, 2", "    eor r25, r25",
)


@settings(max_examples=12, deadline=None)
@given(body=st.lists(st.sampled_from(SAFE_OPS), min_size=1, max_size=10),
       n_stores=st.integers(min_value=0, max_value=3),
       call_kernel=st.booleans())
def test_rewritten_modules_lint_clean(body, n_stores, call_kernel):
    system = SfiSystem()
    lines = ["f:", "    movw r26, r24"] + list(body)
    lines += ["    st X+, r22"] * n_stores
    if call_kernel:
        lines.append("    call {}".format(
            hex(system.kernel_symbols()["KERNEL_NOOP"])))
    lines.append("    ret")
    system.load_module(assemble("\n".join(lines) + "\n", "m"), "m",
                       exports=("f",))
    _model, report = lint_system(system)
    errors = [d.render() for d in report.diagnostics.errors]
    assert not errors, errors


# =====================================================================
# Static safe-stack bound vs the runtime high-water mark (acceptance)
# =====================================================================
def _bench_image_model(machine):
    layout = SfiLayout()
    syms = dict(machine.program.symbols)
    jt = JumpTable(base=layout.jt_base, ndomains=layout.ndomains,
                   entries_per_domain=layout.jt_page_bytes // 4)
    d0 = ModuleRegion(
        name="bench", domain=0, start=0, end=layout.jt_base,
        policy="umpu",
        entries={n: syms[n] for n in ("store_fn", "local_fn",
                                      "local_call_fn", "xcall_fn")})
    d1 = ModuleRegion(
        name="remote", domain=1,
        start=layout.jt_base + 8 * 512, end=layout.jt_base + 9 * 512,
        policy="umpu", entries={"remote_fn": syms["remote_fn"]})
    return ImageModel(machine.memory.read_flash_word, layout, jt, None,
                      modules=[d0, d1], symbols=syms, mode="umpu")


def test_static_bound_covers_runtime_high_water():
    machine, _probe, _jt = build_umpu_bench()
    registry = machine.attach_metrics()
    for _ in range(8):                    # the run_all.py workload
        machine.enter_domain(0)
        machine.call("store_fn")
        machine.enter_trusted()
        machine.call("xcall_fn")
    registry.sample(machine)
    high_water = registry.gauge("safe_stack_high_water").value
    assert high_water > 0

    report = analyze_image(_bench_image_model(machine))
    stack = report.stack
    assert not report.diagnostics.has_errors
    assert stack.bound_bytes is not None, "bench image must bound"
    assert stack.covers(high_water), \
        "static bound {} < measured high water {}".format(
            stack.bound_bytes, high_water)
    # the bound is not absurdly loose either: one xdom frame per hop
    # plus one 2-byte activation frame per call depth
    assert stack.bound_bytes <= stack.capacity
    assert stack.per_domain[0].max_depth == 2   # local_call_fn -> local_fn
    assert (0, 1) in {(s, d) for s, d, _l in stack.edges}


def test_safe_stack_high_water_is_monotone_peak():
    machine, _probe, _jt = build_umpu_bench()
    unit = machine.safe_stack_unit
    assert unit.high_water == 0
    machine.enter_domain(0)
    machine.call("store_fn")
    first = unit.high_water
    assert first > unit.floor             # something was parked
    machine.enter_trusted()
    machine.call("xcall_fn")
    assert unit.high_water >= first       # peak never decreases
    registry = machine.attach_metrics()
    registry.sample(machine)
    assert registry.gauge("safe_stack_high_water").value \
        == unit.high_water - unit.floor


# =====================================================================
# The strict load-time lint gate (satellite)
# =====================================================================
def test_strict_lint_gate_admits_clean_modules():
    system = SfiSystem(strict_lint=True)
    load(system)
    assert "mod" in system.modules


def test_strict_lint_gate_rejects_on_whole_image_errors():
    system = SfiSystem(strict_lint=True)
    load(system, "good")
    # corrupt the already-loaded module: overwrite its first word with a
    # raw store.  Loading a *second* module re-lints the whole image.
    raw_store = assemble("    st X, r24\n").words[0]
    mod = system.modules["good"]
    system.machine.memory.write_flash_word(mod.start // 2, raw_store)
    system.machine.core.invalidate_decode_cache()
    with pytest.raises(VerifyError) as exc:
        load(system, "second")
    # the raw store reports HL001; the orphaned second word of the
    # 2-word instruction it overwrote reports HL011
    assert exc.value.rule in ("HL001", "HL011")
    assert "HL001" in str(exc.value)
    assert "whole-image lint rejected" in str(exc.value)
    assert "second" not in system.modules     # rolled back


# =====================================================================
# Symbol map + forensics symbolization (satellite)
# =====================================================================
def test_symbol_map_merges_runtime_linker_and_exports():
    system = SfiSystem()
    load(system)
    smap = system.symbol_map()
    assert "hb_xdom_call" in smap
    assert "mod.fill" in smap                 # module code address
    jt_labels = [n for n in smap if n.startswith("jt_d0_")]
    assert jt_labels                          # jump-table slot labels
    by_addr = system.machine.forensics._symbols_by_addr()
    # the first slot's address collides with the HB_JT_BASE constant
    # (first-source-wins dedup), but slot labels beyond it resolve
    assert any(by_addr.get(smap[label]) == label for label in jt_labels)


def test_fault_window_symbolizes_runtime_calls():
    system = SfiSystem()
    load(system)
    machine = system.machine
    machine.attach_trace()
    # a wide trace-backed window reaches back into the module code that
    # issued the faulting checked store
    machine.attach_forensics(window=64, layout=system.layout,
                             symbols=system.symbol_map)
    victim = system.malloc(8)                 # trusted-owned block
    with pytest.raises(MemMapFault) as exc:
        system.call_export("mod", "fill", victim, ("u8", 0x66))
    report = exc.value.report
    assert report.window_source == "trace"
    texts = [entry["text"] for entry in report.instr_window]
    assert any(text.startswith("call hb_st_") for text in texts), texts


# =====================================================================
# Data-region annotations (satellite): data words are data, not code
# =====================================================================
DATA_MODULE = """
entry:
    ldi r24, 1
    ret
table:
.dw 0xFFFF
.dw 0x0000
"""


def test_data_words_report_hl011_without_annotation():
    system = SfiSystem()
    region, _prog = place_raw(system, DATA_MODULE, name="data")
    _model, report = lint_system(system, extra_modules=[region])
    table = region.entries["table"]
    assert any(d.rule.code == "HL011" and d.byte_addr == table
               for d in report.diagnostics.findings)


def test_data_span_annotation_excludes_data_words():
    import dataclasses
    system = SfiSystem()
    region, _prog = place_raw(system, DATA_MODULE, name="data")
    table = region.entries["table"]
    region = dataclasses.replace(
        region, data_spans=((table, table + 4),),
        entries={"entry": region.entries["entry"]})
    _model, report = lint_system(system, extra_modules=[region])
    in_span = [d for d in report.diagnostics.findings
               if d.byte_addr is not None
               and table <= d.byte_addr < table + 4]
    assert not in_span                        # no HL011, no HL010
    assert "HL011" not in report.diagnostics.codes()


# =====================================================================
# Widening terminates and over-approximates (hypothesis, satellite)
# =====================================================================
from repro.analysis.static import absint  # noqa: E402
from repro.sim import Machine             # noqa: E402

_SAFE_REGS = (20, 21, 22, 23)


def _loop_body_op():
    d = st.sampled_from(_SAFE_REGS)
    s = st.sampled_from(_SAFE_REGS)
    k = st.integers(0, 255)
    return st.one_of(
        st.builds("ldi r{}, {}".format, d, k),
        st.builds("mov r{}, r{}".format, d, s),
        st.builds("inc r{}".format, d),
        st.builds("dec r{}".format, d),
        st.builds("subi r{}, {}".format, d, k),
        st.builds("andi r{}, {}".format, d, k),
        st.builds("ori r{}, {}".format, d, k),
        st.builds("add r{}, r{}".format, d, s),
        st.builds("eor r{}, r{}".format, d, s),
        st.builds("lsr r{}".format, d),
    )


@settings(max_examples=12, deadline=None)
@given(st.data())
def test_widening_terminates_and_overapproximates(data):
    """Random loop-heavy programs: the fixpoint must terminate without
    giving up, and the abstract state at ``ret`` must contain the
    concrete register values an actual run produces (soundness)."""
    nloops = data.draw(st.integers(1, 3), label="loops")
    lines = ["f:"]
    for i in range(nloops):
        bound = data.draw(st.integers(1, 4), label="bound{}".format(i))
        body = data.draw(st.lists(_loop_body_op(), min_size=1,
                                  max_size=5), label="body{}".format(i))
        lines.append("    ldi r24, {}".format(bound))
        lines.append("l{}:".format(i))
        lines.extend("    " + op for op in body)
        lines.append("    dec r24")
        lines.append("    brne l{}".format(i))
    lines.append("    ret")
    prog = assemble(".org 0x100\n" + "\n".join(lines) + "\n", "h")
    lo, hi = prog.extent()
    read = lambda i: prog.words.get(i, 0xFFFF)          # noqa: E731
    cfg = RegionCFG.build(read, lo * 2, (hi + 1) * 2, name="h")
    stats = {}
    in_states = absint.analyze_cfg(cfg, stats=stats)
    # termination: bound-stable widening caps the ascending chains
    assert not stats["gave_up"]
    assert stats["iterations"] <= 20 * len(cfg.blocks) + 20
    # soundness: every concrete run lands inside the abstract intervals
    machine = Machine(prog)
    machine.call("f", max_cycles=50000)
    ret_addr = next(line.byte_addr for b in cfg.blocks.values()
                    for line in b.lines
                    if line.instr is not None and line.instr.key == "ret")
    state = absint.state_at(cfg, in_states, ret_addr)
    for reg in _SAFE_REGS + (24,):
        val = state.get(reg)
        if val is absint.TOP:
            continue                          # top contains everything
        vlo, vhi = absint._as_range(val)
        assert vlo <= machine.core.reg(reg) <= vhi, \
            "r{}: concrete {} outside abstract [{}, {}]".format(
                reg, machine.core.reg(reg), vlo, vhi)


# =====================================================================
# Rule metadata: full descriptions, doc anchors, SARIF export
# =====================================================================
def test_rule_metadata_is_complete_and_anchored():
    for r in RULES:
        assert r.full.strip(), "rule {} has no full description".format(
            r.code)
        assert r.anchor == "{}-{}".format(r.code.lower(), r.slug)
        assert r.help_uri == "docs/static-analysis.md#" + r.anchor


def test_every_rule_has_a_doc_anchor():
    import os
    path = os.path.join(os.path.dirname(__file__), "..", "docs",
                        "static-analysis.md")
    doc = open(path).read()
    for r in RULES:
        heading = "### {} {}".format(r.code, r.slug)
        assert heading in doc, "missing doc section {!r}".format(heading)


def test_sarif_rules_carry_full_descriptions(tmp_path):
    report = _lint_broken()
    path = str(tmp_path / "lint.sarif")
    write_report(path, report.diagnostics, fmt="sarif")
    doc = json.loads(open(path).read())
    rules = doc["runs"][0]["tool"]["driver"]["rules"]
    assert rules
    for entry in rules:
        assert entry["fullDescription"]["text"]
        assert entry["helpUri"].startswith("docs/static-analysis.md#hl")
        code = entry["id"].lower()
        assert entry["helpUri"].split("#")[1].startswith(code)
