"""ALU semantics: results and SREG flags, checked against a Python
reference model for the arithmetic family (property-based) and against
hand-picked datasheet cases."""

import pytest
from hypothesis import given, strategies as st

from repro.asm import assemble
from repro.isa.registers import SREG_BITS
from repro.sim import Machine

C, Z, N, V, S, H = (SREG_BITS.C, SREG_BITS.Z, SREG_BITS.N, SREG_BITS.V,
                    SREG_BITS.S, SREG_BITS.H)


def run_alu(instr_src, r16=0, r17=0, sreg=0):
    """Execute one ALU instruction on r16/r17; return (r16, flags)."""
    m = Machine(assemble("    {}\n    break\n".format(instr_src)))
    m.core.set_reg(16, r16)
    m.core.set_reg(17, r17)
    m.memory.sreg = sreg
    m.run(max_cycles=10)
    return m.core.reg(16), m.memory.sreg


def flags(sreg):
    return {SREG_BITS.NAMES[i] for i in range(8) if (sreg >> i) & 1}


# ---------------------------------------------------------------------
# add / adc / sub / sbc reference model
# ---------------------------------------------------------------------
def _ref_add(a, b, carry):
    r = (a + b + carry) & 0xFF
    out = set()
    if ((a & 0xF) + (b & 0xF) + carry) > 0xF:
        out.add("H")
    if a + b + carry > 0xFF:
        out.add("C")
    if r == 0:
        out.add("Z")
    if r & 0x80:
        out.add("N")
    if (~(a ^ b) & (a ^ r)) & 0x80:
        out.add("V")
    if ("N" in out) ^ ("V" in out):
        out.add("S")
    return r, out


def _ref_sub(a, b, carry, old_z=False, keep_z=False):
    r = (a - b - carry) & 0xFF
    out = set()
    if ((a & 0xF) - (b & 0xF) - carry) < 0:
        out.add("H")
    if a - b - carry < 0:
        out.add("C")
    z = r == 0
    if keep_z:
        z = z and old_z
    if z:
        out.add("Z")
    if r & 0x80:
        out.add("N")
    if ((a ^ b) & (a ^ r)) & 0x80:
        out.add("V")
    if ("N" in out) ^ ("V" in out):
        out.add("S")
    return r, out


@given(st.integers(0, 255), st.integers(0, 255))
def test_add_matches_reference(a, b):
    result, sreg = run_alu("add r16, r17", a, b)
    ref_r, ref_f = _ref_add(a, b, 0)
    assert result == ref_r
    assert flags(sreg) - {"T", "I"} == ref_f


@given(st.integers(0, 255), st.integers(0, 255), st.booleans())
def test_adc_matches_reference(a, b, carry):
    result, sreg = run_alu("adc r16, r17", a, b, sreg=int(carry))
    ref_r, ref_f = _ref_add(a, b, int(carry))
    assert result == ref_r
    assert flags(sreg) - {"T", "I"} == ref_f


@given(st.integers(0, 255), st.integers(0, 255))
def test_sub_matches_reference(a, b):
    result, sreg = run_alu("sub r16, r17", a, b)
    ref_r, ref_f = _ref_sub(a, b, 0)
    assert result == ref_r
    assert flags(sreg) - {"T", "I"} == ref_f


@given(st.integers(0, 255), st.integers(0, 255), st.booleans(),
       st.booleans())
def test_sbc_matches_reference(a, b, carry, old_z):
    sreg_in = int(carry) | (int(old_z) << 1)
    result, sreg = run_alu("sbc r16, r17", a, b, sreg=sreg_in)
    ref_r, ref_f = _ref_sub(a, b, int(carry), old_z, keep_z=True)
    assert result == ref_r
    assert flags(sreg) - {"T", "I"} == ref_f


@given(st.integers(0, 255), st.integers(0, 255))
def test_cp_is_sub_without_store(a, b):
    result, sreg = run_alu("cp r16, r17", a, b)
    assert result == a  # unchanged
    _ref_r, ref_f = _ref_sub(a, b, 0)
    assert flags(sreg) - {"T", "I"} == ref_f


@given(st.integers(0, 255), st.integers(0, 255))
def test_subi_matches_sub(a, k):
    r1, f1 = run_alu("subi r16, {}".format(k), a)
    ref_r, ref_f = _ref_sub(a, k, 0)
    assert r1 == ref_r and flags(f1) - {"T", "I"} == ref_f


# ---------------------------------------------------------------------
# logic ops
# ---------------------------------------------------------------------
@given(st.integers(0, 255), st.integers(0, 255))
def test_and_or_eor(a, b):
    for op, fn in (("and", lambda x, y: x & y),
                   ("or", lambda x, y: x | y),
                   ("eor", lambda x, y: x ^ y)):
        result, sreg = run_alu("{} r16, r17".format(op), a, b)
        expect = fn(a, b)
        assert result == expect
        f = flags(sreg)
        assert ("Z" in f) == (expect == 0)
        assert ("N" in f) == bool(expect & 0x80)
        assert "V" not in f
        assert ("S" in f) == ("N" in f)


def test_com():
    result, sreg = run_alu("com r16", 0x55)
    assert result == 0xAA
    assert "C" in flags(sreg)
    result, sreg = run_alu("com r16", 0xFF)
    assert result == 0
    assert "Z" in flags(sreg)


@pytest.mark.parametrize("val,result,expect_flags", [
    (0x00, 0x00, {"Z"}),
    (0x01, 0xFF, {"C", "N", "S", "H"}),
    (0x80, 0x80, {"C", "N", "V"}),
])
def test_neg(val, result, expect_flags):
    r, sreg = run_alu("neg r16", val)
    assert r == result
    assert flags(sreg) - {"T", "I"} >= expect_flags


def test_inc_dec_preserve_carry():
    _, sreg = run_alu("inc r16", 5, sreg=1)
    assert "C" in flags(sreg)
    _, sreg = run_alu("dec r16", 5, sreg=1)
    assert "C" in flags(sreg)


def test_inc_overflow():
    r, sreg = run_alu("inc r16", 0x7F)
    assert r == 0x80
    assert {"V", "N"} <= flags(sreg)
    r, sreg = run_alu("inc r16", 0xFF)
    assert r == 0
    assert "Z" in flags(sreg)


def test_dec_overflow():
    r, sreg = run_alu("dec r16", 0x80)
    assert r == 0x7F
    assert "V" in flags(sreg)


# ---------------------------------------------------------------------
# shifts
# ---------------------------------------------------------------------
@given(st.integers(0, 255))
def test_lsr(a):
    r, sreg = run_alu("lsr r16", a)
    assert r == a >> 1
    f = flags(sreg)
    assert ("C" in f) == bool(a & 1)
    assert "N" not in f
    assert ("Z" in f) == (a >> 1 == 0)


@given(st.integers(0, 255))
def test_asr_preserves_sign(a):
    r, _sreg = run_alu("asr r16", a)
    assert r == ((a >> 1) | (a & 0x80))


@given(st.integers(0, 255), st.booleans())
def test_ror_through_carry(a, carry):
    r, sreg = run_alu("ror r16", a, sreg=int(carry))
    assert r == ((int(carry) << 7) | (a >> 1))
    assert ("C" in flags(sreg)) == bool(a & 1)


@given(st.integers(0, 255))
def test_lsl_alias_doubles(a):
    r, sreg = run_alu("lsl r16", a)
    assert r == (a << 1) & 0xFF
    assert ("C" in flags(sreg)) == bool(a & 0x80)


def test_swap():
    r, _ = run_alu("swap r16", 0xA5)
    assert r == 0x5A


# ---------------------------------------------------------------------
# 16-bit word ops
# ---------------------------------------------------------------------
def run_word(instr_src, value, sreg=0):
    m = Machine(assemble("    {}\n    break\n".format(instr_src)))
    m.core.set_reg_pair(26, value)
    m.memory.sreg = sreg
    m.run(max_cycles=10)
    return m.core.reg_pair(26), m.memory.sreg


@given(st.integers(0, 0xFFFF), st.integers(0, 63))
def test_adiw(value, k):
    r, sreg = run_word("adiw r26, {}".format(k), value)
    assert r == (value + k) & 0xFFFF
    f = flags(sreg)
    assert ("Z" in f) == (r == 0)
    assert ("C" in f) == (value + k > 0xFFFF)


@given(st.integers(0, 0xFFFF), st.integers(0, 63))
def test_sbiw(value, k):
    r, sreg = run_word("sbiw r26, {}".format(k), value)
    assert r == (value - k) & 0xFFFF
    f = flags(sreg)
    assert ("Z" in f) == (r == 0)
    assert ("C" in f) == (value < k)


@given(st.integers(0, 255), st.integers(0, 255))
def test_mul(a, b):
    m = Machine(assemble("    mul r16, r17\n    break\n"))
    m.core.set_reg(16, a)
    m.core.set_reg(17, b)
    m.run(max_cycles=10)
    assert m.core.reg_pair(0) == a * b
    assert bool(m.core.flag(C)) == bool((a * b) & 0x8000)
    assert bool(m.core.flag(Z)) == (a * b == 0)


def test_movw():
    m = Machine(assemble("    movw r30, r26\n    break\n"))
    m.core.set_reg_pair(26, 0xBEEF)
    m.run(max_cycles=10)
    assert m.core.reg_pair(30) == 0xBEEF


# ---------------------------------------------------------------------
# bit manipulation
# ---------------------------------------------------------------------
def test_bst_bld():
    m = Machine(assemble("    bst r16, 3\n    bld r17, 7\n    break\n"))
    m.core.set_reg(16, 0b0000_1000)
    m.run(max_cycles=10)
    assert m.core.reg(17) == 0x80


def test_bset_bclr_via_aliases():
    m = Machine(assemble("    sec\n    sei\n    clz\n    break\n"))
    m.memory.sreg = 0b0000_0010
    m.run(max_cycles=10)
    assert m.core.flag(C) == 1
    assert m.core.flag(SREG_BITS.I) == 1
    assert m.core.flag(Z) == 0


# ---------------------------------------------------------------------
# specific datasheet flag cases (regression pins)
# ---------------------------------------------------------------------
@pytest.mark.parametrize("a,b,expect_r,expect", [
    (0x80, 0x80, 0x00, {"C", "Z", "V"}),   # add: -128 + -128
    (0x7F, 0x01, 0x80, {"N", "V", "H"}),   # add: 127 + 1 overflows
    (0xFF, 0x01, 0x00, {"C", "Z", "H"}),   # add: carry out
])
def test_add_flag_cases(a, b, expect_r, expect):
    r, sreg = run_alu("add r16, r17", a, b)
    assert r == expect_r
    got = flags(sreg) - {"T", "I", "S"}
    assert got == expect or got - {"H"} == expect - {"H"}
    assert flags(sreg) >= expect
