"""Multi-node collection network: topology, forwarding, and the
network-level impact of the Surge bug (the paper's motivation)."""

import pytest

from repro.sos import (
    FixedSurgeModule,
    SensorNetwork,
    SurgeModule,
)


def line_network(n=4, protected=True):
    """node0 (sink) - node1 - node2 - ... - node(n-1)."""
    net = SensorNetwork(protected=protected)
    for i in range(n):
        # encode the node id in the sampled values
        net.add_node(i, sensor_series=[i * 16 + k for k in range(1, 9)])
    for i in range(n - 1):
        net.link(i, i + 1)
    net.build_tree(0)
    return net


def test_tree_building():
    net = line_network(4)
    assert net.nodes[0].is_sink
    assert net.nodes[1].parent == 0
    assert net.nodes[2].parent == 1
    assert net.nodes[3].parent == 2


def test_star_topology_tree():
    net = SensorNetwork()
    for i in range(4):
        net.add_node(i)
    for leaf in (1, 2, 3):
        net.link(0, leaf)
    net.build_tree(0)
    assert all(net.nodes[i].parent == 0 for i in (1, 2, 3))


def test_unreachable_node_stays_unrooted():
    net = SensorNetwork()
    net.add_node(0)
    net.add_node(1)
    net.add_node(9)  # no links
    net.link(0, 1)
    reached = net.build_tree(0)
    assert 9 not in reached
    assert net.nodes[9].parent is None


def test_single_hop_collection():
    net = line_network(2)
    net.install_collection()
    net.sample_all()
    net.run(rounds=3)
    assert len(net.delivered) == 1
    pkt = net.delivered[0]
    assert pkt.hops == 1
    assert pkt.frame[0] == 0x7E           # routing header marker
    assert not net.fault_report()


def test_multi_hop_collection():
    net = line_network(4)
    net.install_collection()
    net.sample_all()
    net.run(rounds=6)
    # three sampling nodes, all samples reach the sink
    assert len(net.delivered) == 3
    hops = sorted(p.hops for p in net.delivered)
    assert hops == [1, 2, 3]
    assert not net.crashed_modules()


def test_sustained_collection_yield():
    net = line_network(3)
    net.install_collection()
    for _round in range(5):
        net.sample_all()
        net.run(rounds=4)
    assert len(net.delivered) == 10  # 2 samplers x 5 rounds
    # per-node memory stays bounded (no leaks across rounds)
    for node in net.nodes.values():
        node.kernel.harbor.heap.check_invariants()


def test_buggy_surge_crashes_unrooted_node_but_network_survives():
    """A node outside the tree runs the buggy Surge: on a protected
    network Harbor contains the crash to that node and the rest keeps
    collecting."""
    net = line_network(3)
    net.add_node(9, sensor_series=[0x99])   # unreachable, no route
    net.build_tree(0)
    net.install_collection()
    net.sample_all()
    net.run(rounds=4)
    # node 9's surge crashed (unchecked SOS_ERROR offset)...
    assert net.crashed_modules() == {9: ["surge"]}
    assert 9 in net.fault_report()
    # ...but the routed nodes delivered everything
    assert len(net.delivered) == 2


def test_unprotected_network_corrupts_silently():
    net = SensorNetwork(protected=False)
    net.add_node(0)
    net.add_node(9, sensor_series=[0x42])
    net.link(0, 9)
    net.build_tree(0)
    # sever node 9's route AFTER install so Surge's call fails
    net.install_collection()
    net.nodes[9].tree.has_parent = False
    tree = net.nodes[9].kernel.modules["tree_routing"].module
    net.nodes[9].kernel.harbor.store_unchecked(tree.state_addr, 0)
    net.sample_all()
    net.run(rounds=3)
    assert not net.crashed_modules()  # nobody noticed
    assert not net.fault_report()
    # the node is corrupted, not stopped: the classic silent failure
    kernel = net.nodes[9].kernel
    heap = kernel.harbor.heap
    dirty = [a for a in range(heap.start, heap.end)
             if kernel.harbor.load(a) == 0x42
             and kernel.harbor.memmap.owner_of(a) !=
             kernel.modules["surge"].domain.did]
    assert dirty


def test_fixed_surge_on_unrooted_node_degrades_gracefully():
    net = SensorNetwork()
    net.add_node(0)
    net.add_node(9)  # unreachable
    net.build_tree(0)
    net.install_collection(surge_cls=FixedSurgeModule)
    net.sample_all()
    net.run(rounds=3)
    assert not net.crashed_modules()
    surge = net.nodes[9].kernel.modules["surge"].module
    assert surge.skipped == 1


def test_crashed_relay_drops_frames():
    """If a relay's tree_routing has crashed, frames through it are
    lost — but the relay's own kernel and the rest of the network live."""
    net = line_network(3)
    net.install_collection()
    # crash node 1's tree_routing artificially
    net.nodes[1].kernel.modules["tree_routing"].state = "crashed"
    net.sample_all()
    net.run(rounds=4)
    # node 1's own sample still went out (surge posts before relaying;
    # its message to the crashed module was dropped); node 2's frame
    # died at the crashed relay
    assert len(net.delivered) == 0
