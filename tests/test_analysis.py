"""Analysis layer: micro-benchmark harness, sizing model, tables."""

import pytest

from repro.analysis.microbench import (
    PAPER_TABLE3,
    PAPER_TABLE4,
    measure_sfi,
    measure_table4,
    measure_umpu,
    step_trace,
    window_cycles,
)
from repro.analysis.sizing import (
    PAPER_SIZING,
    PAPER_TABLE5,
    measure_library,
    memmap_size,
    paper_sizing_points,
    sweep,
)
from repro.analysis.tables import comparison_rows, ratio, render_table


# ---------------------------------------------------------------------
# Table 3 shape assertions (the reproduction acceptance criteria)
# ---------------------------------------------------------------------
@pytest.fixture(scope="module")
def umpu_numbers():
    return measure_umpu()


@pytest.fixture(scope="module")
def sfi_numbers():
    return measure_sfi()


def test_umpu_memmap_checker_is_one_cycle(umpu_numbers):
    assert umpu_numbers["Memmap Checker"] == 1  # exactly the paper


def test_umpu_save_restore_free(umpu_numbers):
    assert umpu_numbers["Save Ret Addr"] == 0
    assert umpu_numbers["Restore Ret Addr"] == 0


def test_umpu_cross_domain_single_digit(umpu_numbers):
    assert 1 <= umpu_numbers["Cross Domain Call"] <= 10
    assert umpu_numbers["Cross Domain Ret"] == 5  # paper value


def test_sfi_overheads_tens_of_cycles(sfi_numbers):
    for name, cycles in sfi_numbers.items():
        assert 20 <= cycles <= 120, (name, cycles)


def test_hw_beats_sw_by_large_factors(umpu_numbers, sfi_numbers):
    """The headline claim: the hardware checks are at least 5x cheaper
    everywhere, and effectively free for save/restore."""
    for name in PAPER_TABLE3:
        hw, sw = umpu_numbers[name], sfi_numbers[name]
        if hw == 0:
            assert sw > 0
        else:
            assert sw / hw >= 5, name


def test_sfi_ordering_matches_paper(sfi_numbers):
    """Checker and cross-domain call are the most expensive; the
    cross-domain return is the cheapest (as in the paper's 65/65/28)."""
    assert sfi_numbers["Cross Domain Ret"] <= sfi_numbers["Memmap Checker"]
    assert sfi_numbers["Cross Domain Ret"] <= \
        sfi_numbers["Cross Domain Call"]


# ---------------------------------------------------------------------
# Table 4 shape assertions
# ---------------------------------------------------------------------
@pytest.fixture(scope="module")
def table4():
    return measure_table4()


def test_protection_costs_cycles_everywhere(table4):
    for name, (normal, protected) in table4.items():
        assert protected > normal, name


def test_malloc_has_smallest_relative_overhead(table4):
    """In the paper, malloc's relative overhead (1.8x) is far below
    free's (3.1x) and change_own's (6.6x): the memory-map update is
    amortized over the allocation walk."""
    rel = {name: p / n for name, (n, p) in table4.items()}
    assert rel["malloc"] < rel["free"]
    assert rel["malloc"] < rel["change_own"]


def test_paper_reference_values_recorded():
    assert PAPER_TABLE3["Memmap Checker"] == (1, 65)
    assert PAPER_TABLE4["malloc"] == (343, 610)


# ---------------------------------------------------------------------
# step tracing machinery
# ---------------------------------------------------------------------
def test_step_trace_and_windows():
    from repro.asm import assemble
    from repro.sim import Machine
    m = Machine(assemble("""
    f:
        nop
    mid:
        ldi r16, 1
        adiw r26, 1
    end:
        ret
    """))
    records = step_trace(m, "f")
    assert [r.cycles for r in records] == [1, 1, 2, 4]
    assert window_cycles(records, m.program.symbol("mid"),
                         m.program.symbol("end")) == 3
    with pytest.raises(ValueError):
        window_cycles(records, 0x500, 0x600)


# ---------------------------------------------------------------------
# sizing model (§5.2)
# ---------------------------------------------------------------------
def test_paper_sizing_numbers_exact():
    points = {p.label: p for p in paper_sizing_points()}
    assert points["full address space, multi-domain"].table_bytes == \
        PAPER_SIZING["memmap_full_multi"]          # 256
    assert points["heap + safe stack, multi-domain"].table_bytes == \
        PAPER_SIZING["memmap_heapstack_multi"]     # 140
    assert points["heap + safe stack, two-domain"].table_bytes == \
        PAPER_SIZING["memmap_heapstack_two"]       # 70
    full = points["full address space, multi-domain"]
    assert abs(full.overhead_pct - PAPER_SIZING["overhead_full_pct"]) \
        < 0.01                                      # 6.25%


def test_memmap_size_scales_inversely_with_block_size():
    sizes = [memmap_size(4096, bs)[0] for bs in (4, 8, 16, 32)]
    assert sizes == [512, 256, 128, 64]


def test_two_domain_halves_the_table():
    multi, _ = memmap_size(4096, 8, "multi")
    two, _ = memmap_size(4096, 8, "two")
    assert two == multi // 2


def test_sweep_covers_grid():
    points = sweep(block_sizes=(8, 16), modes=("multi", "two"))
    assert len(points) == 4


def test_measure_library_shape():
    m = measure_library()
    assert set(PAPER_TABLE5) <= set(m)
    # jump table: 8 domains x 512 B pages, no RAM (paper: 2048 with
    # 2-byte entries; ours uses 4-byte jmp entries)
    assert m["Jump Table"] == (4096, 0)
    # memory map RAM matches the configured table + safe stack
    assert m["Memory Map"][1] > 0
    # total library code in the same ballpark as the paper's 3674 B
    assert 800 < m["total_code_bytes"] < 4096
    assert m["code_pct"] < PAPER_SIZING["code_pct"] + 1


# ---------------------------------------------------------------------
# table rendering
# ---------------------------------------------------------------------
def test_render_table():
    text = render_table("Title", ("A", "B"), [(1, 2.5), ("x", None)],
                        note="note")
    assert "Title" in text
    assert "2.50" in text
    assert "N/A" in text
    assert "note" in text


def test_comparison_rows_and_ratio():
    rows = comparison_rows({"a": 2}, {"a": 4, "b": 1})
    assert rows == [("a", 2, 4), ("b", None, 1)]
    assert ratio(2, 4) == "0.50x"
    assert ratio(1, 0) == "-"
