"""Soundness of the symbolic block evaluator (repro.analysis.static.
symexec): for seeded-random straight-line blocks, the symbolic effect
summary evaluated against the captured pre-state must reproduce the
exact architectural effect of concrete ``step()`` execution — every
byte of the data space (registers, SREG, SP, SRAM) and the cycle
count — on both protection systems' cores: the stock AvrCore the SFI
system runs modules on, and the UMPU-extended core (where the MMC may
add stall cycles but never changes state).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.static.symexec import (
    CLASS_PURE,
    CLASS_TRANSLATABLE,
    CLASS_UNTRANSLATABLE,
    ConcreteEnv,
    UnsupportedInstruction,
    classify_lines,
    image_after,
    run_summary,
    summarize,
)
from repro.asm import assemble
from repro.asm.disassembler import disassemble
from repro.sim import Machine
from repro.umpu import HarborLayout, UmpuMachine

#: scratch SRAM window every generated store lands in (owned by
#: domain 0 on the UMPU machine so checked stores are allowed)
SCRATCH = 0x0400
SCRATCH_SIZE = 0x100

GP_REGS = list(range(16, 26))

ALU2 = ["add", "adc", "sub", "sbc", "and", "or", "eor", "mov",
        "cp", "cpc"]
ALU1 = ["inc", "dec", "com", "neg", "lsr", "ror", "asr", "swap"]
IMM = ["subi", "sbci", "andi", "ori", "cpi", "ldi"]


def _block_alu(rng, lines):
    kind = rng.randrange(4)
    if kind == 0:
        lines.append("    {} r{}, r{}".format(
            rng.choice(ALU2), rng.choice(GP_REGS), rng.choice(GP_REGS)))
    elif kind == 1:
        lines.append("    {} r{}".format(
            rng.choice(ALU1), rng.choice(GP_REGS)))
    elif kind == 2:
        lines.append("    {} r{}, {}".format(
            rng.choice(IMM), rng.choice(GP_REGS), rng.randrange(256)))
    else:
        lines.append("    mul r{}, r{}".format(
            rng.choice(GP_REGS), rng.choice(GP_REGS)))


def _block_wide(rng, lines):
    lines.append("    {} r24, {}".format(
        rng.choice(["adiw", "sbiw"]), rng.randrange(64)))


def _block_memory(rng, lines):
    base = SCRATCH + rng.randrange(0, 0x80)
    ptr, lo_reg, hi_reg = rng.choice(
        [("x", 26, 27), ("y", 28, 29), ("z", 30, 31)])
    lines.append("    ldi r{}, {}".format(lo_reg, base & 0xFF))
    lines.append("    ldi r{}, {}".format(hi_reg, base >> 8))
    for _ in range(rng.randrange(1, 4)):
        reg = rng.choice(GP_REGS)
        mode = rng.randrange(5)
        if mode == 0:
            lines.append("    st {}+, r{}".format(ptr, reg))
        elif mode == 1:
            lines.append("    ld r{}, {}+".format(reg, ptr))
        elif mode == 2 and ptr in ("y", "z"):
            lines.append("    std {}+{}, r{}".format(
                ptr, rng.randrange(32), reg))
        elif mode == 3 and ptr in ("y", "z"):
            lines.append("    ldd r{}, {}+{}".format(
                reg, ptr, rng.randrange(32)))
        elif mode == 4:
            lines.append("    st -{}, r{}".format(ptr, reg))
        else:
            lines.append("    st {}, r{}".format(ptr, reg))
    addr = SCRATCH + 0x80 + rng.randrange(0x40)
    lines.append("    sts {}, r{}".format(addr, rng.choice(GP_REGS)))
    lines.append("    lds r{}, {}".format(rng.choice(GP_REGS), addr))


def _block_stack(rng, lines):
    regs = rng.sample(GP_REGS, 2)
    lines.append("    push r{}".format(regs[0]))
    lines.append("    push r{}".format(regs[1]))
    lines.append("    pop r{}".format(regs[1]))
    lines.append("    pop r{}".format(regs[0]))


def _block_bits(rng, lines):
    lines.append("    bst r{}, {}".format(
        rng.choice(GP_REGS), rng.randrange(8)))
    lines.append("    bld r{}, {}".format(
        rng.choice(GP_REGS), rng.randrange(8)))
    lines.append("    {} {}".format(
        rng.choice(["bset", "bclr"]), rng.randrange(6)))


def _block_sreg(rng, lines):
    lines.append("    in r{}, 0x3F".format(rng.choice(GP_REGS)))
    lines.append("    out 0x3F, r{}".format(rng.choice(GP_REGS)))


BLOCKS = [_block_alu, _block_alu, _block_alu, _block_wide,
          _block_memory, _block_memory, _block_stack, _block_bits,
          _block_sreg]


def generate_block(seed, n_blocks=10):
    """A seeded-random straight-line block (no control flow)."""
    rng = random.Random(seed)
    lines = ["blk:"]
    for _ in range(n_blocks):
        rng.choice(BLOCKS)(rng, lines)
    lines.append("    nop")   # stepped-past terminator slot
    return "\n".join(lines) + "\n", rng


def _randomize_state(core, rng):
    data = core.memory.data
    for reg in range(32):
        data[reg] = rng.randrange(256)
    # leave I clear so nothing can preempt the stepped block
    data[0x5F] = rng.randrange(256) & 0x7F
    for off in range(SCRATCH_SIZE):
        data[SCRATCH + off] = rng.randrange(256)


def _block_lines(program):
    lines = [ln for ln in disassemble(program)]
    assert lines[-1].instr.key == "nop"
    return lines[:-1]     # everything but the terminator slot


def _run_concrete(core, start, count):
    core.pc = start
    before = core.cycles
    for _ in range(count):
        core.step()
    return core.cycles - before


def _assert_summary_matches(core, program, exact_cycles=True):
    lines = _block_lines(program)
    summary = summarize(lines)
    env = ConcreteEnv.from_core(core)
    outcome = run_summary(summary, env)
    predicted = image_after(summary, env)
    cycles = _run_concrete(core, program.symbol("blk"), len(lines))
    assert bytes(core.memory.data) == bytes(predicted)
    if exact_cycles:
        assert cycles == outcome.cycles
    else:
        assert cycles >= outcome.cycles


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_symexec_matches_step_on_stock_core(seed):
    """SFI-side soundness: symbolic summary == concrete step() on the
    stock core the rewritten modules execute on."""
    src, rng = generate_block(seed)
    program = assemble(src)
    machine = Machine(program)
    _randomize_state(machine.core, rng)
    _assert_summary_matches(machine.core, program)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_symexec_matches_step_on_umpu_core(seed):
    """UMPU-side soundness: same state effect on the extended core in
    an untrusted domain; the MMC may stall (cycles >=) but never
    changes the outcome."""
    src, rng = generate_block(seed)
    program = assemble(src)
    machine = UmpuMachine(program, layout=HarborLayout())
    machine.memmap.set_segment(SCRATCH, SCRATCH_SIZE, 0)
    # bound at RAMEND: the block's own pushes are the deepest frame
    machine.enter_domain(0, stack_bound=0x0FFF)
    _randomize_state(machine.core, rng)
    lines = _block_lines(program)
    summary = summarize(lines)
    env = ConcreteEnv.from_core(machine.core)
    outcome = run_summary(summary, env)
    predicted = image_after(summary, env)
    cycles = _run_concrete(machine.core, program.symbol("blk"),
                           len(lines))
    assert bytes(machine.core.memory.data) == bytes(predicted)
    assert cycles >= outcome.cycles


# ---------------------------------------------------------------------
# model boundary


def test_summarize_rejects_indirect_jump():
    program = assemble("blk:\n    ijmp\n    nop\n")
    with pytest.raises(UnsupportedInstruction):
        summarize(_block_lines(program))


def test_summarize_rejects_sp_write():
    program = assemble("blk:\n    out 0x3D, r16\n    nop\n")
    with pytest.raises(UnsupportedInstruction):
        summarize(_block_lines(program))


def test_summarize_rejects_mid_block_control():
    program = assemble("blk:\n    rjmp blk\n    inc r16\n    nop\n")
    lines = [ln for ln in disassemble(program)]
    with pytest.raises(UnsupportedInstruction):
        summarize(lines)


def test_classify_levels():
    pure = assemble("blk:\n    inc r16\n    add r17, r18\n    nop\n")
    cls, _reason, _addr = classify_lines(_block_lines(pure))
    assert cls == CLASS_PURE

    mem = assemble("blk:\n    ldi r26, 0\n    ldi r27, 4\n"
                   "    st X, r16\n    nop\n")
    cls, _reason, _addr = classify_lines(_block_lines(mem))
    assert cls == CLASS_TRANSLATABLE

    bad = assemble("blk:\n    inc r16\n    ijmp\n    nop\n")
    cls, reason, addr = classify_lines(_block_lines(bad))
    assert cls == CLASS_UNTRANSLATABLE
    assert reason
    assert addr == 2


def test_branch_terminator_cycles():
    """A block ending in a taken/untaken branch costs the conditional
    extra cycle exactly when the concrete flag says so."""
    src = "blk:\n    cpi r16, 5\n    brne blk\n    nop\n"
    program = assemble(src)
    for r16 in (5, 6):
        machine = Machine(assemble(src))
        machine.core.memory.data[16] = r16
        lines = _block_lines(program)
        summary = summarize(lines)
        env = ConcreteEnv.from_core(machine.core)
        outcome = run_summary(summary, env)
        cycles = _run_concrete(machine.core, 0, len(lines))
        assert cycles == outcome.cycles
