"""Memory map: encodings (paper Table 1), translation (Figure 4b),
segment operations, and property-based invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.core.encoding import (
    MultiDomainEncoding,
    TRUSTED_DOMAIN,
    TwoDomainEncoding,
    encoding_for,
)
from repro.core.faults import MemMapFault
from repro.core.memmap import (
    BufferStorage,
    MemMapConfig,
    MemoryBackedStorage,
    MemoryMap,
)
from repro.sim import Memory


# ---------------------------------------------------------------------
# Table 1: permission codes
# ---------------------------------------------------------------------
def test_multi_domain_codes_match_paper_table1():
    enc = MultiDomainEncoding()
    # 1111 = free / start of trusted segment
    assert enc.encode(TRUSTED_DOMAIN, True) == 0b1111
    assert enc.free == 0b1111
    # 1110 = later portion of trusted segment
    assert enc.encode(TRUSTED_DOMAIN, False) == 0b1110
    # xxx1 / xxx0 = start / later of domain 0-6 segments
    for dom in range(7):
        assert enc.encode(dom, True) == (dom << 1) | 1
        assert enc.encode(dom, False) == dom << 1


def test_multi_domain_decode_roundtrip():
    enc = MultiDomainEncoding()
    for dom in range(8):
        for start in (True, False):
            perm = enc.decode(enc.encode(dom, start))
            assert perm.owner == dom
            assert perm.is_start == start


def test_two_domain_codes():
    enc = TwoDomainEncoding()
    assert enc.bits_per_entry == 2
    assert enc.free == 0b11
    assert enc.encode(TRUSTED_DOMAIN, True) == 0b11
    assert enc.encode(TRUSTED_DOMAIN, False) == 0b10
    assert enc.encode(0, True) == 0b01
    assert enc.encode(0, False) == 0b00
    with pytest.raises(ValueError):
        enc.encode(3, True)


def test_encoding_for():
    assert encoding_for("multi").bits_per_entry == 4
    assert encoding_for("two").bits_per_entry == 2
    with pytest.raises(ValueError):
        encoding_for("three")


# ---------------------------------------------------------------------
# configuration / translation
# ---------------------------------------------------------------------
def cfg(bottom=0x200, top=0xCFF, bs=8, mode="multi"):
    return MemMapConfig(prot_bottom=bottom, prot_top=top, block_size=bs,
                        mode=mode)


def test_table_sizing_matches_paper():
    # 4KiB space, 8-byte blocks, 4-bit entries -> 256 bytes (paper §5.2)
    full = MemMapConfig(0, 0xFFF, 8, "multi")
    assert full.nblocks == 512
    assert full.table_bytes == 256
    # two-domain halves it
    assert MemMapConfig(0, 0xFFF, 8, "two").table_bytes == 128
    # heap+safe-stack only (2240 bytes): 140 / 70 bytes
    assert MemMapConfig(0, 2239, 8, "multi").table_bytes == 140
    assert MemMapConfig(0, 2239, 8, "two").table_bytes == 70


def test_config_validation():
    with pytest.raises(ValueError):
        MemMapConfig(0, 0xFFF, 7)          # not a power of two
    with pytest.raises(ValueError):
        MemMapConfig(0x100, 0x10A, 8)      # span not block multiple
    with pytest.raises(ValueError):
        MemMapConfig(0x100, 0xFF, 8)       # empty


def test_translate_figure4b():
    """Address translation of the paper's Figure 4b, worked by hand."""
    c = cfg(bottom=0x200, bs=8)
    tr = c.translate(0x200)
    assert (tr.offset, tr.block, tr.byte_index, tr.entry_index) == \
        (0, 0, 0, 0)
    tr = c.translate(0x207)          # same first block
    assert tr.block == 0
    tr = c.translate(0x208)          # second block -> high nibble
    assert tr.block == 1
    assert tr.byte_index == 0
    assert tr.entry_index == 1
    assert tr.shift == 4
    tr = c.translate(0x210)          # third block -> next byte
    assert tr.byte_index == 1
    assert tr.entry_index == 0


def test_translate_two_domain_packs_four_per_byte():
    c = cfg(mode="two")
    assert c.entries_per_byte == 4
    assert c.translate(c.prot_bottom + 3 * 8).shift == 6
    assert c.translate(c.prot_bottom + 4 * 8).byte_index == 1


def test_block_of_bounds():
    c = cfg()
    with pytest.raises(ValueError):
        c.block_of(0x1FF)
    with pytest.raises(ValueError):
        c.block_of(0xD00)
    assert c.block_of(0x200) == 0
    assert c.block_addr(1) == 0x208


def test_blocks_spanning():
    c = cfg()
    assert c.blocks_spanning(0x200, 8) == (0, 0)
    assert c.blocks_spanning(0x200, 9) == (0, 1)
    assert c.blocks_spanning(0x204, 8) == (0, 1)
    assert c.blocks_spanning(0x208, 0) == (1, 1)


# ---------------------------------------------------------------------
# MemoryMap operations
# ---------------------------------------------------------------------
def test_fresh_map_is_all_free():
    mm = MemoryMap(cfg())
    for block in range(mm.config.nblocks):
        assert mm.get_code(block) == mm.encoding.free


def test_set_segment_and_owner_of():
    mm = MemoryMap(cfg())
    mm.set_segment(0x300, 24, 3)
    assert mm.owner_of(0x300) == 3
    assert mm.owner_of(0x317) == 3
    assert mm.owner_of(0x318) == TRUSTED_DOMAIN
    assert mm.is_segment_start(mm.config.block_of(0x300))
    assert not mm.is_segment_start(mm.config.block_of(0x308))


def test_segment_length_from_layout():
    mm = MemoryMap(cfg())
    mm.set_segment(0x300, 40, 2)
    assert mm.segment_length(0x300) == 5
    with pytest.raises(ValueError):
        mm.segment_length(0x308)  # not a start


def test_adjacent_same_owner_segments_stay_distinct():
    mm = MemoryMap(cfg())
    mm.set_segment(0x300, 16, 2)
    mm.set_segment(0x310, 16, 2)
    assert mm.segment_length(0x300) == 2
    assert mm.segment_length(0x310) == 2


def test_free_segment():
    mm = MemoryMap(cfg())
    mm.set_segment(0x300, 32, 1)
    assert mm.free_segment(0x300) == 4
    assert mm.owner_of(0x300) == TRUSTED_DOMAIN
    assert mm.get_code(mm.config.block_of(0x300)) == mm.encoding.free


def test_change_owner_preserves_layout():
    mm = MemoryMap(cfg())
    mm.set_segment(0x300, 32, 1)
    assert mm.change_owner(0x300, 4) == 4
    assert mm.owner_of(0x300) == 4
    assert mm.segment_length(0x300) == 4


def test_check_write():
    mm = MemoryMap(cfg())
    mm.set_segment(0x300, 8, 2)
    mm.check_write(0x300, 2)                  # owner
    mm.check_write(0x300, TRUSTED_DOMAIN)     # trusted bypass
    with pytest.raises(MemMapFault):
        mm.check_write(0x300, 1)
    with pytest.raises(MemMapFault):
        mm.check_write(0x400, 1)              # free block


def test_segments_listing():
    mm = MemoryMap(cfg())
    mm.set_segment(0x200, 16, 0)
    mm.set_segment(0x210, 8, 1)
    segs = mm.segments()
    assert (0x200, 2, 0) in segs
    assert (0x210, 1, 1) in segs


def test_memory_backed_storage():
    mem = Memory()
    mm = MemoryMap(cfg(), MemoryBackedStorage(mem, 0x100))
    mm.set_segment(0x300, 8, 5)
    # the nibble lives in simulated SRAM
    block = mm.config.block_of(0x300)
    assert mem.read_data(0x100 + block // 2) & 0x0F == (5 << 1) | 1


def test_initialize_false_preserves_storage():
    store = BufferStorage(0x200)
    mm1 = MemoryMap(cfg(), store)
    mm1.set_segment(0x300, 8, 5)
    mm2 = MemoryMap(cfg(), store, initialize=False)
    assert mm2.owner_of(0x300) == 5


# ---------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------
@given(st.lists(
    st.tuples(st.integers(0, 350), st.integers(1, 16),
              st.integers(0, 6)),
    max_size=20))
def test_property_set_then_read_back(ops):
    """Writing arbitrary non-overlapping-last-wins segments, the last
    writer of each block is its owner."""
    mm = MemoryMap(cfg())
    expected = {}
    for block0, nblocks, owner in ops:
        nblocks = min(nblocks, mm.config.nblocks - block0)
        if nblocks <= 0:
            continue
        addr = mm.config.block_addr(block0)
        mm.set_segment(addr, nblocks * 8, owner)
        for i in range(nblocks):
            expected[block0 + i] = (owner, i == 0)
    for block, (owner, start) in expected.items():
        perm = mm.permission(block)
        assert perm.owner == owner
        assert perm.is_start == start


@given(st.integers(0x200, 0xCFF), st.sampled_from([4, 8, 16, 32]))
def test_property_translation_consistency(addr, bs):
    """Translation agrees with direct arithmetic for any block size."""
    c = MemMapConfig(0x200, 0x200 + 0xB00 - 1, bs, "multi")
    tr = c.translate(addr)
    assert tr.offset == addr - 0x200
    assert tr.block == tr.offset // bs
    assert tr.byte_index == tr.block // 2
    assert tr.shift in (0, 4)


@given(st.data())
def test_property_get_set_code_roundtrip(data):
    mm = MemoryMap(cfg())
    block = data.draw(st.integers(0, mm.config.nblocks - 1))
    code = data.draw(st.integers(0, 15))
    before = {b: mm.get_code(b) for b in
              range(max(0, block - 2), min(mm.config.nblocks, block + 3))
              if b != block}
    mm.set_code(block, code)
    assert mm.get_code(block) == code
    # neighbours untouched (packing does not bleed)
    for b, val in before.items():
        assert mm.get_code(b) == val
