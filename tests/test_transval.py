"""Translation validation (repro.analysis.static.transval): the
installed image certifies iff it is a sanctioned translation of the
source — and every tampering vector (patched flash, forged or stale
elision manifest, raw placement) fails with a stable HL017."""

import random

import pytest

from repro.analysis.static.diagnostics import DiagnosticsEngine
from repro.analysis.static.elision import (
    MANIFEST_ATTACKS,
    corrupt_manifest,
)
from repro.analysis.static.transval import (
    stub_call_models,
    validate_translation,
)
from repro.asm.assembler import Assembler, default_symbols
from repro.sfi.layout import SfiLayout
from repro.sfi.system import SfiSystem
from repro.sfi.verifier import VerifyError

PREDEFINED = set(default_symbols())


def _assemble(system, path):
    asm = Assembler(symbols=system.kernel_symbols())
    with open(path) as handle:
        return asm.assemble(handle.read(), name=path)


def _exports(program):
    lo, hi = program.extent()
    return tuple(sorted(
        n for n, a in program.symbols.items()
        if n not in PREDEFINED and lo * 2 <= a <= hi * 2 + 1))


def _load(path="examples/modules/clean_sensor.s", elide=False,
          static_data=0, **kwargs):
    layout = SfiLayout(static_data_bytes=static_data,
                       static_data_domains=1 if static_data else 0)
    system = SfiSystem(layout=layout)
    program = _assemble(system, path)
    exports = _exports(program)
    module = system.load_module(program, "mod", exports=exports,
                                elide=elide, **kwargs)
    return system, program, module, exports


def _validate(system, program, module, exports, manifest="module"):
    if manifest == "module":
        manifest = module.manifest
    return validate_translation(
        program, system.machine.memory.read_flash_word,
        module.start, module.end, system.layout,
        system.runtime.symbols, exports=exports, manifest=manifest,
        region="mod", domain=module.domain, module="mod")


# ---------------------------------------------------------------------
# the happy path


def test_clean_module_certifies():
    system, program, module, exports = _load(certify=True)
    report = module.certification
    assert report is not None and report.ok
    assert report.mismatches == 0
    assert report.store_checks == 3
    assert report.semantic_proofs == 3     # every check symexec-proved
    assert report.elided_sites == 0
    assert report.certified_blocks == len(report.blocks) > 0
    assert report.translatable_blocks == len(report.blocks)


def test_elided_module_certifies_through_manifest():
    system, program, module, exports = _load(
        "examples/modules/static_logger.s", elide=True,
        static_data=256, certify=True)
    report = module.certification
    assert report.ok
    assert module.manifest is not None
    assert report.elided_sites == module.manifest.elided_checks > 0


def test_report_dict_shape():
    system, program, module, exports = _load(certify=True)
    doc = module.certification.to_dict()
    assert doc["schema"] == 1
    assert doc["ok"] is True and doc["mismatches"] == 0
    assert doc["blocks"]["total"] == len(module.certification.blocks)
    assert doc["blocks"]["translatable"] \
        + doc["blocks"]["untranslatable"] == doc["blocks"]["total"]
    assert set(doc["block_classes"]) \
        == {"0x{:04x}".format(s) for s in module.certification.blocks}


def test_stub_call_models_cover_runtime():
    system = SfiSystem()
    models = stub_call_models(system.runtime.symbols)
    names = {m.name for m in models.values()}
    assert "hb_st_sts" in names and "hb_st_x" in names
    assert all(m.store for m in models.values())
    assert models[system.runtime.symbols["hb_st_x_plus"]].delta == 1
    assert models[system.runtime.symbols["hb_st_x_dec"]].delta == -1


# ---------------------------------------------------------------------
# tampering fails with HL017


def test_patched_image_fails_certification():
    system, program, module, exports = _load()
    word = module.start // 2 + 5
    value = system.machine.memory.read_flash_word(word)
    system.machine.memory.write_flash_word(word, value ^ 1)
    report = _validate(system, program, module, exports)
    assert not report.ok
    assert report.engine.findings[0].rule.code == "HL017"


def test_certify_gate_rolls_back_on_mismatch():
    system, program, module, exports = _load()
    word = module.start // 2 + 5
    value = system.machine.memory.read_flash_word(word)
    system.machine.memory.write_flash_word(word, value ^ 1)
    with pytest.raises(VerifyError) as exc_info:
        system._certify_gate("mod", program, exports, ())
    assert exc_info.value.rule == "HL017"
    assert "mod" not in system.modules   # load rolled back


@pytest.mark.parametrize("attack", MANIFEST_ATTACKS)
def test_forged_manifest_fails_certification(attack):
    system, program, module, exports = _load(
        "examples/modules/static_logger.s", elide=True,
        static_data=256)
    assert module.manifest is not None
    rng = random.Random(2007)
    forged = corrupt_manifest(module.manifest, attack, rng)
    report = _validate(system, program, module, exports,
                       manifest=forged)
    assert not report.ok, attack
    assert report.engine.findings[0].rule.code == "HL017"


def test_withheld_manifest_fails_certification():
    """A raw store in the image with no manifest at all is HL017."""
    system, program, module, exports = _load(
        "examples/modules/static_logger.s", elide=True,
        static_data=256)
    assert module.manifest is not None
    report = _validate(system, program, module, exports, manifest=None)
    assert not report.ok


def test_raw_placement_fails_certification():
    """The unchecked image of a miscompiled module is not a sanctioned
    translation of itself: entries lack prologues, stores lack
    checks."""
    system = SfiSystem()
    program = _assemble(system, "examples/modules/miscompiled.s")
    lo, hi = program.extent()
    base = system._next_load
    for word_addr, value in program.words.items():
        system.machine.memory.write_flash_word(
            base // 2 + word_addr - lo, value)
    system.machine.core.invalidate_decode_cache()
    engine = DiagnosticsEngine()
    report = validate_translation(
        program, system.machine.memory.read_flash_word,
        base, base + (hi - lo + 1) * 2, system.layout,
        system.runtime.symbols, exports=_exports(program),
        engine=engine, region="miscompiled", module="miscompiled")
    assert not report.ok
    assert any(f.rule.code == "HL017" for f in engine.findings)
    assert report.certified_blocks == 0


def test_wrong_export_target_fails_certification():
    system, program, module, exports = _load()
    export_targets = {exports[0]: module.start + 2}  # off by one line
    report = validate_translation(
        program, system.machine.memory.read_flash_word,
        module.start, module.end, system.layout,
        system.runtime.symbols, exports=exports,
        export_targets=export_targets, region="mod", module="mod")
    assert not report.ok


# ---------------------------------------------------------------------
# JIT-readiness classification (HL018)


def test_unmodeled_instruction_is_hl018_note_not_error():
    """elpm is sanctioned (copied verbatim) but outside the symbolic
    model: the module certifies, its block is flagged untranslatable."""
    system = SfiSystem()
    asm = Assembler(symbols=system.kernel_symbols())
    program = asm.assemble(
        "fn:\n"
        "    ldi r30, 0\n"
        "    ldi r31, 0\n"
        "    elpm r24, Z\n"
        "    ret\n", name="elpm_mod")
    module = system.load_module(program, "elpm_mod", exports=("fn",),
                                certify=True)
    report = module.certification
    assert report.ok                      # certifies: zero HL017
    assert report.untranslatable_blocks >= 1
    notes = [f for f in report.engine.findings
             if f.rule.code == "HL018"]
    assert notes and all(f.severity == "note" for f in notes)
    assert report.certified_blocks == len(report.blocks)
    assert report.translatable_blocks < len(report.blocks)
