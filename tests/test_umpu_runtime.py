"""The UMPU-retargeted software library and two-domain hardware mode."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.core.encoding import TRUSTED_DOMAIN
from repro.core.faults import MemMapFault
from repro.core.memmap import MemMapConfig, MemoryBackedStorage, MemoryMap
from repro.isa.registers import IoReg
from repro.sim import AccessKind, DataBus, Machine, Memory
from repro.umpu import (
    HarborLayout,
    MemMapController,
    UmpuMachine,
    UmpuRegisters,
    build_umpu_runtime,
    umpu_runtime_source,
)


# ---------------------------------------------------------------------
# runtime generation
# ---------------------------------------------------------------------
def test_umpu_runtime_source_retargeted():
    src = umpu_runtime_source()
    # safe-stack pointer reads go to the hardware register
    assert "in r30, {}".format(IoReg.SAFE_STACK_PTR_L) in src
    assert "lds r30, HB_SS_LO" not in src
    # caller-dom frame offset accounts for the redirected return address
    assert "sbiw r30, 7" in src
    # no software store checker / rewriter stubs on the hardware system
    assert "hb_check_x" not in src
    assert "hb_st_x" not in src
    assert "hb_save_ret" not in src
    # but the library + services + dispatch springboard are present
    for sym in ("hb_malloc", "hb_free", "hb_change_own",
                "hb_malloc_svc", "hb_dispatch", "hb_init"):
        assert sym in src


def test_umpu_runtime_assembles_deterministically():
    p1 = build_umpu_runtime()
    p2 = build_umpu_runtime()
    assert p1.words == p2.words
    assert p1.code_bytes < 1024  # much smaller than the SFI runtime


def test_umpu_runtime_smaller_than_sfi_runtime():
    from repro.sfi.runtime_asm import build_runtime
    assert build_umpu_runtime().code_bytes < build_runtime().code_bytes


def test_umpu_library_allocator_works_on_hardware():
    layout_hw = HarborLayout()
    machine = UmpuMachine(build_umpu_runtime(), layout=layout_hw)
    machine.enter_trusted()
    machine.call("hb_init", max_cycles=100000)
    machine.call("hb_malloc", 16)
    ptr = machine.result16()
    assert ptr
    view = MemoryMap(layout_hw.memmap_config,
                     MemoryBackedStorage(machine.memory,
                                         layout_hw.memmap_table),
                     initialize=False)
    assert view.owner_of(ptr) == TRUSTED_DOMAIN


# ---------------------------------------------------------------------
# two-domain (2-bit) hardware mode
# ---------------------------------------------------------------------
def make_two_domain_mmc(cur_domain=0):
    mem = Memory()
    regs = UmpuRegisters().attach(mem)
    regs.mem_map_base = 0x100
    regs.mem_prot_bot = 0x200
    regs.mem_prot_top = 0xCFF
    regs.stack_bound = 0xFFF
    regs.cur_domain = cur_domain
    regs.encode_config(3, False, 2)   # two-domain, 8-byte blocks
    mmc = MemMapController(regs, mem)
    memmap = MemoryMap(MemMapConfig(0x200, 0xCFF, 8, "two"),
                       MemoryBackedStorage(mem, 0x100))
    bus = DataBus(mem)
    bus.add_interposer(mmc)
    return mmc, memmap, bus, mem, regs


def test_two_domain_table_is_half_size():
    cfg4 = MemMapConfig(0x200, 0xCFF, 8, "multi")
    cfg2 = MemMapConfig(0x200, 0xCFF, 8, "two")
    assert cfg2.table_bytes * 2 == cfg4.table_bytes


def test_two_domain_mmc_allows_user_segment():
    _mmc, memmap, bus, mem, _regs = make_two_domain_mmc(cur_domain=0)
    memmap.set_segment(0x300, 16, 0)
    assert bus.write(0x300, 0x42, AccessKind.DATA_STORE) == 1
    assert mem.read_data(0x300) == 0x42


def test_two_domain_mmc_blocks_trusted_segment():
    _mmc, memmap, bus, mem, _regs = make_two_domain_mmc(cur_domain=0)
    memmap.set_segment(0x300, 16, TRUSTED_DOMAIN)
    with pytest.raises(MemMapFault):
        bus.write(0x300, 0x42, AccessKind.DATA_STORE)
    # free memory is trusted-coded too
    with pytest.raises(MemMapFault):
        bus.write(0x400, 0x42, AccessKind.DATA_STORE)


def test_two_domain_mmc_trusted_bypass():
    _mmc, memmap, bus, mem, _regs = make_two_domain_mmc(
        cur_domain=TRUSTED_DOMAIN)
    memmap.set_segment(0x300, 16, 0)
    assert bus.write(0x300, 1, AccessKind.DATA_STORE) == 0


@settings(max_examples=150, deadline=None)
@given(addr=st.integers(0x200, 0xCFF),
       owner=st.sampled_from([0, TRUSTED_DOMAIN]),
       domain=st.sampled_from([0, TRUSTED_DOMAIN]))
def test_property_two_domain_mmc_matches_encoding(addr, owner, domain):
    """2-bit hardware decode agrees with the TwoDomainEncoding."""
    _mmc, memmap, bus, _mem, _regs = make_two_domain_mmc(
        cur_domain=domain)
    memmap.set_segment(0x280, 0xA80, owner)
    allowed = (domain == TRUSTED_DOMAIN) or (owner == domain)
    if 0x280 <= addr < 0xD00:
        expected_owner = owner
    else:
        expected_owner = TRUSTED_DOMAIN  # below 0x280: free
        allowed = domain == TRUSTED_DOMAIN
    try:
        bus.write(addr, 1, AccessKind.DATA_STORE)
        assert allowed
    except MemMapFault as exc:
        assert not allowed
        assert exc.owner == expected_owner


def test_two_domain_end_to_end_machine():
    """A whole program under 2-bit hardware protection."""
    layout = HarborLayout(mode="two", ndomains=2)
    src = """
    store_fn:
        movw r26, r24
        st X, r22
        ret
    """
    m = UmpuMachine(assemble(src), layout=layout)
    m.memmap.set_segment(0x0400, 32, 0)
    m.enter_domain(0)
    m.call("store_fn", 0x0400, ("u8", 0x11))
    assert m.memory.read_data(0x0400) == 0x11
    with pytest.raises(MemMapFault):
        m.call("store_fn", 0x0500, ("u8", 0x22))
