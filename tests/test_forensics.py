"""Fault forensics: the flight recorder, fault reports and the debugger.

Covers the tentpole guarantees: every fault type produces a
:class:`FaultReport` with an owner-annotated faulting address, a
reconstructed cross-domain call stack and a non-empty disassembled
instruction window — in both the software-Harbor (SfiSystem) and UMPU
hardware configurations; the library's numeric fault codes round-trip
through the stable ``code`` slugs; and the watchpoint/breakpoint
debugger observes without perturbing architectural state.
"""

import json

import pytest

from repro.asm import assemble
from repro.core.encoding import TRUSTED_DOMAIN
from repro.core.faults import (
    FAULT_BY_CODE,
    ConfigFault,
    JumpTableFault,
    MemMapFault,
    OwnershipFault,
    ProtectionFault,
    SafeStackOverflow,
    SafeStackUnderflow,
    StackBoundFault,
    UntrustedAccessFault,
    fault_from_code,
)
from repro.sfi.layout import (
    FAULT_JT,
    FAULT_MEMMAP,
    FAULT_NAMES,
    FAULT_OUTSIDE,
    FAULT_OWNERSHIP,
    FAULT_SS_OVERFLOW,
    FAULT_STACK_BOUND,
)
from repro.sfi.system import SfiSystem
from repro.trace import RECENT_REPORTS, BreakpointHit, WatchpointHit
from repro.trace.forensics import dump_recent
from repro.umpu import HarborLayout, UmpuMachine, UmpuSystem

ALL_FAULTS = [
    ProtectionFault("synthetic violation", domain=0, addr=0x0400),
    MemMapFault(0x0400, 0, 1),
    StackBoundFault(0x0FF0, 0, 0x0F00),
    UntrustedAccessFault(0x0060, 0),
    JumpTableFault(0x2000, 0),
    SafeStackOverflow(0x0D00, 0x0D00),
    SafeStackUnderflow(),
    OwnershipFault(0x0400, 0, 1, "free"),
    ConfigFault("memmap table", 0),
]


# ---------------------------------------------------------------------
# stable fault codes
# ---------------------------------------------------------------------
def test_every_fault_class_has_a_stable_code():
    codes = {type(f).code for f in ALL_FAULTS}
    assert len(codes) == len(ALL_FAULTS)  # all distinct
    for fault in ALL_FAULTS:
        assert FAULT_BY_CODE[type(fault).code] is type(fault)


@pytest.mark.parametrize("fault", ALL_FAULTS,
                         ids=lambda f: type(f).code)
def test_fault_from_code_round_trips(fault):
    rebuilt = fault_from_code(type(fault).code, addr=fault.addr,
                              domain=fault.domain)
    assert type(rebuilt) is type(fault)
    assert rebuilt.code == type(fault).code


def test_fault_from_code_unknown_slug_degrades_to_base():
    fault = fault_from_code("no_such_code", addr=0x123)
    assert type(fault) is ProtectionFault
    assert fault.addr == 0x123


# ---------------------------------------------------------------------
# every fault type -> full report, on both system configurations
# ---------------------------------------------------------------------
def _machine_for(config):
    if config == "sfi":
        return SfiSystem().machine
    return UmpuSystem().machine


@pytest.mark.parametrize("config", ["sfi", "umpu"])
@pytest.mark.parametrize("fault_factory", [
    pytest.param(lambda f=f: type(f)(*_ctor_args(f)), id=type(f).code)
    for f in ALL_FAULTS
])
def test_every_fault_type_produces_a_report(config, fault_factory):
    machine = _machine_for(config)
    fault = fault_factory()
    recorded = machine.record_fault(fault)
    assert recorded is fault
    report = fault.report
    assert report.code == type(fault).code
    assert report.fault_type == type(fault).__name__
    assert report.instr_window, "instruction window must not be empty"
    assert report.call_stack, "call stack must not be empty"
    assert report.window_source in ("trace", "static")
    if fault.addr is not None:
        assert report.addr == fault.addr
        assert report.addr_region is not None
    assert len(report.registers) == 32
    # JSON export round-trips and text renders
    doc = json.loads(report.to_json())
    assert doc["schema"] == 1
    assert doc["code"] == report.code
    assert "PROTECTION FAULT" in report.text()
    # idempotent funnel: a second record keeps the first report
    machine.record_fault(fault)
    assert fault.report is report


def _ctor_args(template):
    """Reconstruct constructor args for a template fault instance."""
    cls = type(template)
    return {
        ProtectionFault: ("synthetic violation", 0, 0x0400),
        MemMapFault: (0x0400, 0, 1),
        StackBoundFault: (0x0FF0, 0, 0x0F00),
        UntrustedAccessFault: (0x0060, 0),
        JumpTableFault: (0x2000, 0),
        SafeStackOverflow: (0x0D00, 0x0D00),
        SafeStackUnderflow: (),
        OwnershipFault: (0x0400, 0, 1, "free"),
        ConfigFault: ("memmap table", 0),
    }[cls]


# ---------------------------------------------------------------------
# end-to-end: UMPU hardware fault with the trace window
# ---------------------------------------------------------------------
POKE_SRC = """
poke:
    ldi r26, 0x00
    ldi r27, 0x04
    ldi r18, 0x55
    st X, r18
    ret
"""


def _umpu_poke_machine():
    layout = HarborLayout()
    machine = UmpuMachine(assemble(POKE_SRC, "poke"), layout=layout)
    machine.memmap.set_segment(0x0400, 8, 1)  # owned by domain 1
    machine.tracker.register_code_region(0, 0, layout.jt_base)
    return machine


def test_umpu_hardware_fault_report_end_to_end():
    machine = _umpu_poke_machine()
    machine.attach_trace()
    machine.enter_domain(0)
    with pytest.raises(MemMapFault) as excinfo:
        machine.call("poke")
    report = excinfo.value.report
    assert report is not None
    assert report.code == "memmap"
    assert report.addr == 0x0400
    assert report.addr_owner == 1          # memory-map block owner
    assert report.addr_region == "protected-region"
    assert report.domain == 0
    assert report.window_source == "trace"
    texts = [entry["text"] for entry in report.instr_window]
    assert any(text.startswith("ldi r18") for text in texts)
    assert report.registers[18] == 0x55
    assert report.call_stack[0].domain == 0
    dump = report.text()
    assert "owner=domain 1" in dump
    assert "region=protected-region" in dump


def test_umpu_fault_report_without_trace_uses_static_window():
    machine = _umpu_poke_machine()
    machine.enter_domain(0)
    with pytest.raises(MemMapFault) as excinfo:
        machine.call("poke")
    report = excinfo.value.report
    assert report is not None
    assert report.window_source == "static"
    assert report.instr_window


def test_umpu_system_cross_domain_call_stack():
    """A fault inside a dispatched module reconstructs the caller
    frame from the hardware safe stack."""
    system = UmpuSystem()
    src = """
    work:
        ldi r26, 0x10
        ldi r27, 0x02
        ldi r18, 9
        st X, r18          ; heap block nobody allocated to us
        ret
    """
    system.load_module(assemble(src, "mod"), "mod", exports=("work",))
    with pytest.raises(ProtectionFault) as excinfo:
        system.call_export("mod", "work")
    report = excinfo.value.report
    assert report is not None
    assert len(report.call_stack) >= 2
    inner, outer = report.call_stack[0], report.call_stack[1]
    assert inner.domain == system.modules["mod"].domain
    assert inner.ret_addr is None          # active frame
    assert outer.domain == TRUSTED_DOMAIN
    assert outer.ret_addr is not None      # return into the dispatcher
    assert report.addr_region == "heap"    # SfiLayout knows heap bounds


# ---------------------------------------------------------------------
# end-to-end: software-Harbor fault
# ---------------------------------------------------------------------
def test_sfi_software_fault_report_end_to_end():
    system = SfiSystem()
    ptr = system.malloc(8, domain=0)
    assert ptr
    with pytest.raises(OwnershipFault) as excinfo:
        system.free(ptr, domain=1)         # not the owner
    report = excinfo.value.report
    assert report is not None
    assert report.code == "ownership"
    assert report.instr_window
    assert report.call_stack


@pytest.mark.parametrize("numeric,expected", [
    (FAULT_MEMMAP, MemMapFault),
    (FAULT_STACK_BOUND, StackBoundFault),
    (FAULT_OUTSIDE, UntrustedAccessFault),
    (FAULT_JT, JumpTableFault),
    (FAULT_SS_OVERFLOW, SafeStackOverflow),
    (FAULT_OWNERSHIP, OwnershipFault),
])
def test_library_fault_code_round_trips_typed(numeric, expected):
    """The on-node numeric codes map back to the same typed exceptions
    the hardware units raise — no anonymous ProtectionFaults."""
    system = UmpuSystem()
    mem = system.machine.memory
    layout = system.layout
    mem.write_data(layout.fault_code, numeric)
    mem.write_data(layout.fault_addr, 0x08)
    mem.write_data(layout.fault_addr + 1, 0x04)  # addr = 0x0408
    with pytest.raises(expected) as excinfo:
        system._checked(0)
    fault = excinfo.value
    assert type(fault) is expected
    assert fault.code == FAULT_NAMES[numeric]
    assert fault.report is not None


def test_unknown_library_fault_code_is_flagged():
    system = UmpuSystem()
    mem = system.machine.memory
    mem.write_data(system.layout.fault_code, 99)
    with pytest.raises(ProtectionFault) as excinfo:
        system._checked(0)
    assert "unknown library fault code 99" in str(excinfo.value)


# ---------------------------------------------------------------------
# RECENT_REPORTS ring + CI dump helper
# ---------------------------------------------------------------------
def test_dump_recent_writes_json_files(tmp_path):
    machine = _umpu_poke_machine()
    machine.enter_domain(0)
    with pytest.raises(MemMapFault):
        machine.call("poke")
    assert len(RECENT_REPORTS) == 1
    paths = dump_recent(str(tmp_path), prefix="unit test")
    assert len(paths) == 1
    assert "memmap" in paths[0]
    doc = json.loads(open(paths[0]).read())
    assert doc["code"] == "memmap"


def test_dump_recent_empty_ring_writes_nothing(tmp_path):
    assert dump_recent(str(tmp_path / "sub")) == []
    assert not (tmp_path / "sub").exists()


# ---------------------------------------------------------------------
# watchpoints and breakpoints
# ---------------------------------------------------------------------
WATCH_SRC = """
main:
    ldi r18, 7
    sts 0x0400, r18
    lds r19, 0x0400
    break
"""


def test_watchpoint_observes_write_then_read():
    from repro.sim import Machine
    machine = Machine(assemble(WATCH_SRC, "watch"))
    debugger = machine.attach_debugger()
    wp = debugger.watch(0x0400, on_read=True, on_write=True)
    machine.run()
    assert machine.core.halted
    assert [(h.write, h.value) for h in wp.hits] == [(True, 7), (False, 7)]
    assert wp.hits[0].addr == 0x0400
    assert machine.core.reg(19) == 7       # observation only


def test_watchpoint_break_on_hit_stops_mid_run():
    from repro.sim import Machine
    machine = Machine(assemble(WATCH_SRC, "watch"))
    debugger = machine.attach_debugger()
    debugger.watch(0x0400, break_on_hit=True)
    with pytest.raises(WatchpointHit) as excinfo:
        machine.run()
    assert excinfo.value.addr == 0x0400
    assert excinfo.value.value == 7
    assert excinfo.value.write
    assert not machine.core.halted


def test_breakpoint_stops_then_resumes_past():
    from repro.sim import Machine
    machine = Machine(assemble(WATCH_SRC, "watch"))
    target = machine.program.symbol("main") + 2   # the sts
    debugger = machine.attach_debugger()
    debugger.add_breakpoint(target)
    with pytest.raises(BreakpointHit) as excinfo:
        machine.run()
    assert excinfo.value.pc_byte == target
    assert machine.core.pc * 2 == target          # not yet executed
    assert machine.core.memory.read_data(0x0400) == 0
    machine.run()                                  # resumes past the stop
    assert machine.core.halted
    assert machine.core.memory.read_data(0x0400) == 7


def test_debugger_detach_restores_unobserved_machine():
    from repro.sim import Machine
    machine = Machine(assemble(WATCH_SRC, "watch"))
    debugger = machine.attach_debugger()
    assert machine.core.debug is debugger
    assert debugger.watch_unit in machine.bus.interposers
    debugger.detach()
    assert machine.core.debug is None
    assert debugger.watch_unit not in machine.bus.interposers
