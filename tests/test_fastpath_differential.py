"""Differential fuzz: the threaded-dispatch fast run loop must be
cycle-for-cycle identical to the fully instrumented ``step()`` path.

``AvrCore.run`` picks ``_run_fast`` only when nothing observes the
core (no trace sink, profiler, debugger, metrics or devices — an
interrupt controller alone stays on the fast loop, which polls it);
otherwise it falls back to ``step()``.  These tests execute
seeded-random but valid
instruction programs on both paths and require the complete
architectural state to match: cycle count, retired-instruction count,
PC, SREG and every byte of the data space (registers, I/O, SP, SRAM).
"""

import random

import pytest

from repro.asm import assemble
from repro.sim import Machine

#: scratch SRAM window the generated memory blocks write into
SCRATCH = 0x0800

#: registers the ALU blocks draw from (r26-r31 are reserved for the
#: X/Y/Z pointers the memory blocks manage)
GP_REGS = list(range(16, 26))

ALU2 = ["add", "adc", "sub", "sbc", "and", "or", "eor", "mov",
        "cp", "cpc"]
ALU1 = ["inc", "dec", "com", "neg", "lsr", "ror", "asr", "swap"]
IMM = ["subi", "sbci", "andi", "ori", "cpi", "ldi"]
SKIPS = ["sbrc", "sbrs"]


def _block_alu(rng, lines):
    kind = rng.randrange(4)
    if kind == 0:
        lines.append("    {} r{}, r{}".format(
            rng.choice(ALU2), rng.choice(GP_REGS), rng.choice(GP_REGS)))
    elif kind == 1:
        lines.append("    {} r{}".format(
            rng.choice(ALU1), rng.choice(GP_REGS)))
    elif kind == 2:
        lines.append("    {} r{}, {}".format(
            rng.choice(IMM), rng.choice(GP_REGS), rng.randrange(256)))
    else:
        lines.append("    mul r{}, r{}".format(
            rng.choice(GP_REGS), rng.choice(GP_REGS)))


def _block_wide(rng, lines):
    op = rng.choice(["adiw", "sbiw"])
    lines.append("    {} r24, {}".format(op, rng.randrange(64)))


def _block_memory(rng, lines):
    # re-seat the pointer every block so displacement/post-inc walks
    # stay inside the scratch window regardless of history
    base = SCRATCH + rng.randrange(0, 0x100)
    ptr, lo_reg, hi_reg = rng.choice(
        [("x", 26, 27), ("y", 28, 29), ("z", 30, 31)])
    lines.append("    ldi r{}, {}".format(lo_reg, base & 0xFF))
    lines.append("    ldi r{}, {}".format(hi_reg, base >> 8))
    for _ in range(rng.randrange(1, 4)):
        reg = rng.choice(GP_REGS)
        mode = rng.randrange(4)
        if mode == 0:
            lines.append("    st {}+, r{}".format(ptr, reg))
        elif mode == 1:
            lines.append("    ld r{}, {}+".format(reg, ptr))
        elif mode == 2 and ptr in ("y", "z"):
            lines.append("    std {}+{}, r{}".format(
                ptr, rng.randrange(32), reg))
        elif mode == 3 and ptr in ("y", "z"):
            lines.append("    ldd r{}, {}+{}".format(
                reg, ptr, rng.randrange(32)))
        else:
            lines.append("    st {}, r{}".format(ptr, reg))
    addr = SCRATCH + 0x180 + rng.randrange(0x40)
    lines.append("    sts {}, r{}".format(addr, rng.choice(GP_REGS)))
    lines.append("    lds r{}, {}".format(rng.choice(GP_REGS), addr))


def _block_stack(rng, lines):
    regs = rng.sample(GP_REGS, 2)
    lines.append("    push r{}".format(regs[0]))
    lines.append("    push r{}".format(regs[1]))
    lines.append("    pop r{}".format(regs[1]))
    lines.append("    pop r{}".format(regs[0]))


def _block_skip(rng, lines):
    lines.append("    {} r{}, {}".format(
        rng.choice(SKIPS), rng.choice(GP_REGS), rng.randrange(8)))
    lines.append("    inc r{}".format(rng.choice(GP_REGS)))
    lines.append("    cpse r{}, r{}".format(
        rng.choice(GP_REGS), rng.choice(GP_REGS)))
    lines.append("    dec r{}".format(rng.choice(GP_REGS)))


def _block_call(rng, lines):
    lines.append("    rcall scramble")


def _block_bits(rng, lines):
    lines.append("    bst r{}, {}".format(
        rng.choice(GP_REGS), rng.randrange(8)))
    lines.append("    bld r{}, {}".format(
        rng.choice(GP_REGS), rng.randrange(8)))


BLOCKS = [_block_alu, _block_alu, _block_alu, _block_wide,
          _block_memory, _block_stack, _block_skip, _block_call,
          _block_bits]


def generate_program(seed, n_blocks=60):
    """A seeded-random straight-line program of valid instructions,
    closed by a short counted loop and ``break``."""
    rng = random.Random(seed)
    lines = []
    for reg in range(16, 32):
        lines.append("    ldi r{}, {}".format(reg, rng.randrange(256)))
    for _ in range(n_blocks):
        rng.choice(BLOCKS)(rng, lines)
    lines += [
        "    ldi r16, 7",
        "tail:",
        "    inc r17",
        "    lsr r18",
        "    dec r16",
        "    brne tail",
        "    break",
        "scramble:",
        "    eor r20, r21",
        "    adc r22, r23",
        "    ret",
    ]
    return "\n".join(lines) + "\n"


def run_both_paths(src, max_cycles=2_000_000):
    fast = Machine(assemble(src))
    assert fast.core.trace is None and fast.core.profiler is None
    fast.run(max_cycles=max_cycles)

    slow = Machine(assemble(src))
    slow.attach_trace()
    slow.attach_profiler()
    slow.run(max_cycles=max_cycles)
    return fast, slow


def assert_states_identical(fast, slow):
    assert fast.core.cycles == slow.core.cycles
    assert fast.core.instret == slow.core.instret
    assert fast.core.pc == slow.core.pc
    assert fast.core.halted == slow.core.halted
    assert fast.core.memory.sreg == slow.core.memory.sreg
    assert bytes(fast.core.memory.data) == bytes(slow.core.memory.data)


@pytest.mark.parametrize("seed", range(12))
def test_fuzzed_program_fast_vs_instrumented(seed):
    fast, slow = run_both_paths(generate_program(seed))
    assert fast.core.halted, "fuzzed program must reach break"
    assert_states_identical(fast, slow)


def test_path_selection():
    """run() uses the fast loop exactly when nothing observes the core."""
    src = generate_program(99, n_blocks=10)

    m = Machine(assemble(src))
    calls = []
    original = m.core._run_fast
    m.core._run_fast = lambda *a: calls.append(a) or original(*a)
    m.run()
    assert calls, "uninstrumented run must take the fast loop"

    m2 = Machine(assemble(src))
    m2.attach_trace()
    m2.core._run_fast = lambda *a: pytest.fail(
        "instrumented run must not take the fast loop")
    m2.run()


def test_debugger_and_metrics_force_instrumented_path():
    """Attaching a debugger or a metrics registry must move the core off
    the fast loop (their hooks only exist on the step() path)."""
    src = generate_program(41, n_blocks=10)

    m = Machine(assemble(src))
    m.attach_debugger()
    m.core._run_fast = lambda *a: pytest.fail(
        "debugger-attached run must not take the fast loop")
    m.run()

    m2 = Machine(assemble(src))
    m2.attach_metrics()
    m2.core._run_fast = lambda *a: pytest.fail(
        "metrics-attached run must not take the fast loop")
    m2.run()


def test_debugger_and_metrics_preserve_architectural_state():
    """Watchpoints and metrics observe without perturbing: the
    instrumented run is cycle-for-cycle identical to the fast run."""
    src = generate_program(43)

    fast = Machine(assemble(src))
    fast.run()

    observed = Machine(assemble(src))
    debugger = observed.attach_debugger()
    watch = debugger.watch(SCRATCH, SCRATCH + 0x1FF, on_read=True)
    observed.attach_metrics()
    observed.run()

    assert_states_identical(fast, observed)
    assert watch.hits, "fuzzed program must touch the scratch window"


FAULT_SRC = """
entry:
    ldi r18, 0x55
    sts 0x0700, r18
    ldi r19, 1
    break
"""


def _umpu_fault_machine(instrumented):
    from repro.umpu import HarborLayout, UmpuMachine
    layout = HarborLayout()
    machine = UmpuMachine(assemble(FAULT_SRC, "flt"), layout=layout)
    machine.memmap.set_segment(0x0700, 8, 1)  # foreign block: store faults
    machine.tracker.register_code_region(0, 0, layout.jt_base)
    if instrumented:
        machine.attach_trace()
        machine.attach_profiler()
    machine.enter_domain(0)
    return machine


def test_fault_propagation_identical_on_both_paths():
    """A protection fault raised inside _run_fast must leave the same
    consistent, resumable state as the instrumented step() path."""
    from repro.core.faults import MemMapFault

    fast = _umpu_fault_machine(instrumented=False)
    took_fast = []
    original = fast.core._run_fast
    fast.core._run_fast = lambda *a: took_fast.append(a) or original(*a)
    slow = _umpu_fault_machine(instrumented=True)

    for machine in (fast, slow):
        with pytest.raises(MemMapFault):
            machine.call("entry")
    assert took_fast, "uninstrumented faulting run must use the fast loop"

    assert fast.core.cycles == slow.core.cycles
    assert fast.core.instret == slow.core.instret
    assert fast.core.pc == slow.core.pc
    assert fast.core.memory.sreg == slow.core.memory.sreg
    assert bytes(fast.core.memory.data) == bytes(slow.core.memory.data)
    # the vetoed store never landed
    assert fast.core.memory.read_data(0x0700) == 0

    # both machines are resumable past the fault and stay in lockstep
    for machine in (fast, slow):
        machine.run(max_cycles=1000)
    assert fast.core.halted and slow.core.halted
    assert fast.core.reg(19) == 1 and slow.core.reg(19) == 1
    assert fast.core.cycles == slow.core.cycles
    assert fast.core.instret == slow.core.instret
    assert bytes(fast.core.memory.data) == bytes(slow.core.memory.data)


def test_observers_attached_and_detached_between_runs():
    """A TraceSink/profiler attached for a middle stretch of execution
    and detached again: the fast -> instrumented -> fast transitions
    must leave state cycle-identical to an uninterrupted fast run."""
    from repro.sim import CycleLimitExceeded
    from repro.trace import install_profiler, install_tracing, uninstall

    src = generate_program(17)
    ref = Machine(assemble(src))
    ref.run()
    total = ref.core.cycles

    staged = Machine(assemble(src))
    with pytest.raises(CycleLimitExceeded):
        staged.run(max_cycles=total // 3)          # fast chunk
    sink = install_tracing(staged)
    profiler = install_profiler(staged)
    with pytest.raises(CycleLimitExceeded):
        staged.run(max_cycles=total // 3)          # instrumented chunk
    assert len(sink) > 0
    assert profiler.total() > 0
    uninstall(staged)
    assert not staged.core.halted
    staged.run()                                   # fast to completion
    assert_states_identical(ref, staged)


def test_timeline_recording_spans_path_transitions():
    """A recording timeline must survive fast <-> instrumented
    transitions: watermark keyframes fire on both paths and seeks into
    any chunk reproduce the budget-stopped live state."""
    from repro.sim import CycleLimitExceeded, MachineSnapshot
    from repro.trace import install_tracing, uninstall

    src = generate_program(23)
    ref = Machine(assemble(src))
    ref.run()
    total = ref.core.cycles

    staged = Machine(assemble(src))
    timeline = staged.attach_timeline(interval=97)
    with pytest.raises(CycleLimitExceeded):
        staged.run(max_cycles=total // 3)          # fast chunk
    install_tracing(staged)
    with pytest.raises(CycleLimitExceeded):
        staged.run(max_cycles=total // 3)          # instrumented chunk
    uninstall(staged)
    staged.run()                                   # fast to completion
    assert_states_identical(ref, staged)

    # keyframes were dropped on both paths, at the same 97-cycle grid
    # (watermark overshoot on multi-cycle instructions stretches the
    # spacing slightly, hence the slack)
    timeline.finalize()
    assert len(timeline.keyframes) >= total // 110

    # seeking to a cycle inside each chunk matches a budget-stopped run
    for target in (total // 6, total // 2, 5 * total // 6):
        timeline.seek(target)
        fresh = Machine(assemble(src))
        try:
            fresh.run(max_cycles=target)
        except CycleLimitExceeded:
            pass
        want = MachineSnapshot.capture(fresh)
        got = MachineSnapshot.capture(staged)
        assert (got.data, got.pc, got.cycles, got.instret, got.halted) \
            == (want.data, want.pc, want.cycles, want.instret, want.halted)


def test_until_pc_and_cycle_budget_match():
    """Stop conditions agree between the paths (until_pc, budgets)."""
    src = generate_program(7)
    prog = assemble(src)

    fast = Machine(prog)
    slow = Machine(prog)
    slow.attach_trace()
    slow.attach_profiler()
    # a budget small enough to interrupt mid-program
    for m in (fast, slow):
        with pytest.raises(Exception):
            m.core.run(max_cycles=50)
    assert fast.core.cycles == slow.core.cycles
    assert fast.core.pc == slow.core.pc
    assert fast.core.instret == slow.core.instret


def test_flash_rewrite_rebinds_handler_on_fast_path():
    """Runtime flash writes must drop the cached bound handler so the
    fast loop decodes and executes the new instruction."""
    src = """
    spin:
        rjmp spin
        ldi r19, 5          ; dead until patched over
    """
    m = Machine(assemble(src))
    from repro.sim import CycleLimitExceeded
    with pytest.raises(CycleLimitExceeded):
        m.run(max_cycles=200)      # fast loop, caches rjmp at pc=0
    assert m.core.reg(19) == 0
    # patch pc=0: rjmp spin -> ldi r19, 0x2A ; then break at pc=1
    patched = assemble("""
        ldi r19, 42
        break
    """)
    for word_addr, value in patched.words.items():
        m.core.memory.write_flash_word(word_addr, value)
    m.core.pc = 0
    m.core.halted = False
    m.run(max_cycles=200)
    assert m.core.halted
    assert m.core.reg(19) == 42
