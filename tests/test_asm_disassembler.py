"""Disassembler tests, including an assemble/disassemble round trip."""

from hypothesis import given, settings, strategies as st

from repro.asm import assemble, disassemble, listing
from repro.asm.disassembler import format_instr
from repro.isa.encoding import decode_words, encode
from repro.isa.opcodes import SPECS


def test_basic_disassembly():
    p = assemble("""
    start:
        ldi r16, 0x42
        sts 0x0100, r16
        rjmp start
    """)
    lines = disassemble(p)
    texts = [l.text for l in lines]
    assert texts[0] == "ldi r16, 66"
    assert texts[1] == "sts 0x0100, r16"
    assert texts[2] == "rjmp start"      # symbolized target


def test_pointer_modes_render():
    p = assemble("""
        ld r5, X+
        st -Y, r6
        ldd r7, Z+12
        std Y+3, r8
    """)
    texts = [l.text for l in disassemble(p)]
    assert texts == ["ld r5, X+", "st -Y, r6", "ldd r7, Z+12",
                     "std Y+3, r8"]


def test_data_words_become_dw():
    lines = disassemble([0xFFFF, 0x0000])
    assert lines[0].instr is None
    assert lines[0].text == ".dw 0xffff"
    assert lines[1].text == "nop"


def test_listing_includes_labels_and_addresses():
    p = assemble("""
    main:
        nop
        call main
    """)
    text = listing(p)
    assert "main:" in text
    assert "00000:" in text
    assert "call main" in text


def test_sizes_accounted():
    lines = disassemble(assemble("    jmp 0\n    nop\n"))
    assert lines[0].size_words == 2
    assert lines[1].size_words == 1
    assert lines[1].byte_addr == 4


@settings(max_examples=200)
@given(st.sampled_from([s for s in SPECS if not s.operands]))
def test_format_zero_operand(spec):
    words = encode(spec.key, ())
    text = format_instr(decode_words(*words))
    assert text == spec.mnemonic


def _reassemblable(line):
    """Render a disassembled line to re-assemblable source."""
    return "    {}\n".format(line.text)


def test_roundtrip_through_source():
    """dis(asm(src)) re-assembles to the identical words for a program
    exercising every format family."""
    src = """
        nop
        ldi r16, 0xAA
        add r16, r17
        movw r30, r26
        adiw r26, 10
        lds r4, 0x0123
        sts 0x0123, r4
        ld r5, X+
        std Z+5, r6
        push r0
        pop r0
        in r16, 0x3F
        out 0x3F, r16
        sbi 4, 2
        lpm r3, Z+
        mul r2, r3
        swap r9
        bst r1, 4
        ret
    """
    p1 = assemble(src)
    source2 = "".join(_reassemblable(l) for l in disassemble(p1))
    p2 = assemble(source2)
    assert p1.words == p2.words
