"""The metrics registry: counters, gauges, histograms and the
machine-level instrumentation that feeds them.

The registry follows the tracing discipline — every emission site is a
single ``is not None`` guard, so a detached machine pays nothing — and
attaching it never changes simulated cycle counts (verified in
tests/test_fastpath_differential.py).
"""

import json

import pytest

from repro.analysis.microbench import build_umpu_bench
from repro.asm import assemble
from repro.core.faults import MemMapFault
from repro.sim import InterruptController, Machine
from repro.sim.devices import PeriodicTimer
from repro.trace.metrics import (
    DEPTH_BUCKETS,
    LATENCY_BUCKETS,
    METRICS_SCHEMA,
    MetricsRegistry,
    install_metrics,
    uninstall_metrics,
    write_metrics,
)
from repro.umpu import HarborLayout, UmpuMachine
from repro.umpu.mmc import MMC_STALL_CYCLES


# ---------------------------------------------------------------------
# registry mechanics
# ---------------------------------------------------------------------
def test_counter_accumulates_and_is_memoized():
    registry = MetricsRegistry()
    registry.counter("hits").inc()
    registry.counter("hits").inc(4)
    assert registry.counter("hits").value == 5
    # different labels -> different series
    registry.counter("hits", domain=1).inc()
    assert registry.counter("hits", domain=1).value == 1
    assert registry.counter("hits").value == 5
    assert len(registry) == 2


def test_gauge_sets_point_in_time_value():
    registry = MetricsRegistry()
    registry.gauge("depth").set(3)
    registry.gauge("depth").set(7)
    assert registry.gauge("depth").value == 7


def test_histogram_bucket_boundaries():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", buckets=(4, 8, 16))
    for value in (1, 4, 5, 16, 17, 1000):
        hist.observe(value)
    assert hist.counts == [2, 1, 1, 2]       # <=4, <=8, <=16, overflow
    assert hist.count == 6
    assert hist.sum == 1 + 4 + 5 + 16 + 17 + 1000


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError):
        MetricsRegistry().histogram("bad", buckets=(8, 4))
    # empty bounds fall back to the default depth buckets
    hist = MetricsRegistry().histogram("empty", buckets=())
    assert hist.buckets == DEPTH_BUCKETS


def test_to_dict_schema_and_render(tmp_path):
    registry = MetricsRegistry()
    registry.counter("faults", code="memmap").inc(2)
    registry.gauge("cycles").set(100)
    registry.histogram("depth", buckets=DEPTH_BUCKETS).observe(3)
    doc = registry.to_dict()
    assert doc["schema"] == METRICS_SCHEMA
    assert doc["counters"] == [{"name": "faults",
                                "labels": {"code": "memmap"}, "value": 2}]
    assert doc["gauges"][0]["value"] == 100
    hist = doc["histograms"][0]
    assert len(hist["counts"]) == len(hist["buckets"]) + 1
    assert hist["count"] == 1
    text = registry.render()
    assert "faults{code=memmap}" in text
    assert "count=1" in text
    path = write_metrics(str(tmp_path / "m.json"), registry)
    assert json.loads(open(path).read()) == json.loads(json.dumps(doc))


def test_empty_registry_renders_placeholder():
    assert MetricsRegistry().render() == "(no metrics recorded)"


# ---------------------------------------------------------------------
# machine-level instrumentation
# ---------------------------------------------------------------------
def _run_bench_workload(machine, iterations=4):
    for _ in range(iterations):
        machine.enter_domain(0)
        machine.call("store_fn")
        machine.enter_trusted()
        machine.call("xcall_fn")


def test_umpu_workload_populates_registry():
    machine, _probe, _jt = build_umpu_bench()
    registry = machine.attach_metrics()
    _run_bench_workload(machine)
    registry.sample(machine)

    stall = registry.counter("mmc_stall_cycles")
    assert stall.value == MMC_STALL_CYCLES * machine.mmc.checked_stores
    checked = registry.counter("mmc_checked_stores", domain=0)
    assert checked.value == machine.mmc.checked_stores

    calls = registry.counter("cross_domain_transfers", via="call")
    rets = registry.counter("cross_domain_transfers", via="ret")
    assert calls.value == machine.tracker.cross_calls
    assert rets.value == machine.tracker.cross_returns
    depth = registry.histogram("cross_domain_depth")
    assert depth.count == calls.value + rets.value  # observed per switch

    assert registry.gauge("cycles").value == machine.core.cycles
    assert registry.gauge("instructions").value == machine.core.instret
    assert registry.gauge("mmc_checked_stores").value \
        == machine.mmc.checked_stores


def test_irq_entry_latency_histogram():
    src = """
        jmp main
        jmp handler
    main:
        sei
    spin:
        inc r20
        cpi r20, 60
        brne spin
        break
    handler:
        inc r16
        reti
    """
    machine = UmpuMachine(assemble(src, "irq"), layout=HarborLayout())
    controller = InterruptController(machine.core, nvectors=4,
                                     vector_stride_words=2)
    PeriodicTimer(controller, line=1, period=25).install(machine.core)
    registry = machine.attach_metrics()
    machine.run(max_cycles=100000)
    assert controller.taken > 0
    latency = registry.histogram("irq_entry_latency",
                                 buckets=LATENCY_BUCKETS, line=1)
    assert latency.count == controller.taken
    assert latency.sum >= 0


def test_protection_fault_counter_labelled_by_code_and_domain():
    layout = HarborLayout()
    src = """
    poke:
        ldi r26, 0x00
        ldi r27, 0x04
        ldi r18, 1
        st X, r18
        ret
    """
    machine = UmpuMachine(assemble(src, "poke"), layout=layout)
    machine.memmap.set_segment(0x0400, 8, 1)
    machine.tracker.register_code_region(0, 0, layout.jt_base)
    registry = machine.attach_metrics()
    machine.enter_domain(0)
    with pytest.raises(MemMapFault):
        machine.call("poke")
    counter = registry.counter("protection_faults", code="memmap", domain=0)
    assert counter.value == 1


def test_install_and_uninstall_toggle_attachment():
    machine = Machine(assemble("    break\n", "noop"))
    assert machine.core.metrics is None and machine.bus.metrics is None
    registry = install_metrics(machine)
    assert machine.core.metrics is registry
    assert machine.bus.metrics is registry
    uninstall_metrics(machine)
    assert machine.core.metrics is None and machine.bus.metrics is None


def test_sample_on_plain_machine_sets_core_gauges_only():
    machine = Machine(assemble("    break\n", "noop"))
    machine.run()
    registry = MetricsRegistry().sample(machine)
    assert registry.gauge("cycles").value == machine.core.cycles
    doc = registry.to_dict()
    gauge_names = {g["name"] for g in doc["gauges"]}
    assert "mmc_checked_stores" not in gauge_names
    assert "cross_domain_nesting" not in gauge_names


def test_certify_publishes_jit_readiness_gauges():
    """load_module(certify=True) publishes the translation-validation
    gauges that back the JIT-readiness report."""
    from repro.asm.assembler import Assembler
    from repro.sfi.system import SfiSystem

    system = SfiSystem()
    registry = system.machine.attach_metrics()
    asm = Assembler(symbols=system.kernel_symbols())
    with open("examples/modules/clean_sensor.s") as handle:
        program = asm.assemble(handle.read(), name="clean_sensor.s")
    module = system.load_module(
        program, "mod", exports=("sample", "tally", "report"),
        certify=True)
    report = module.certification
    certified = registry.gauge("certified_blocks", module="mod")
    translatable = registry.gauge("translatable_blocks", module="mod")
    mismatches = registry.gauge("transval_mismatches", module="mod")
    assert certified.value == report.certified_blocks > 0
    assert translatable.value == report.translatable_blocks > 0
    assert translatable.value <= certified.value
    assert mismatches.value == 0
    doc = registry.to_dict()
    names = {g["name"] for g in doc["gauges"]}
    assert {"certified_blocks", "translatable_blocks",
            "transval_mismatches"} <= names
