"""Time-travel timeline: cycle-indexed record/replay determinism.

The tentpole guarantee: for any recorded run, ``Timeline.seek(c)``
restores machine state **bit-identical** (full ``MachineSnapshot``
comparison — data space, flash, PC, cycle and retired-instruction
counters, halt flag, protection-unit extra state) to a fresh live run
stopped at cycle *c* by a cycle budget.  Verified here on fuzzed plain
machines and on scripted multi-run scenarios on both ``SfiSystem`` and
``UmpuSystem``, including runs that take a protection fault mid-way.

Also covered: run-segment clamping of replay windows, reverse-step,
block heat + speedscope export, replay-backed forensics, the metrics
counters, and the timeline JSON index.
"""

import json

import pytest

from repro.asm import assemble
from repro.core.faults import ProtectionFault
from repro.sfi import SfiSystem
from repro.sim import CycleLimitExceeded, Machine, MachineSnapshot
from repro.trace import (
    TIMELINE_SCHEMA,
    BlockHeat,
    to_speedscope,
)
from repro.umpu import UmpuSystem

from tests.test_fastpath_differential import generate_program


def state_of(machine):
    """The full architectural state, as a comparable tuple."""
    snap = MachineSnapshot.capture(machine)
    return (snap.data, snap.flash, snap.pc, snap.cycles, snap.instret,
            snap.halted, snap.extra)


def run_budget_stopped(src, budget):
    """A fresh live run stopped at cycle *budget* — the reference state
    ``seek`` must reproduce."""
    machine = Machine(assemble(src))
    try:
        machine.run(max_cycles=budget)
    except CycleLimitExceeded:
        pass
    return machine


# ---------------------------------------------------------------------
# fuzzed plain machines: seek == budget-stopped live run
# ---------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 5, 9])
def test_seek_matches_budget_stopped_live_run(seed):
    src = generate_program(seed)
    recorded = Machine(assemble(src))
    timeline = recorded.attach_timeline(interval=199)
    recorded.run(max_cycles=2_000_000)
    timeline.finalize()
    assert recorded.core.halted

    end = timeline.end_cycle
    targets = sorted({1, end // 7, end // 3, end // 2, 2 * end // 3,
                      end - 1, end, end + 5000})
    for target in targets:
        if target < 1:
            continue
        timeline.seek(target)
        fresh = run_budget_stopped(src, target)
        assert state_of(recorded) == state_of(fresh), \
            "replay diverged from live run at cycle {}".format(target)
    # seeks in any order: go backwards over the same targets
    for target in reversed(targets):
        if target < 1:
            continue
        timeline.seek(target)
        fresh = run_budget_stopped(src, target)
        assert state_of(recorded) == state_of(fresh)


def test_seek_instret_matches_live_run():
    src = generate_program(13)
    recorded = Machine(assemble(src))
    timeline = recorded.attach_timeline(interval=151)
    recorded.run()
    timeline.finalize()
    last = timeline.keyframes[-1].instret
    for target in (1, last // 3, last // 2, last - 1, last):
        timeline.seek_instret(target)
        assert recorded.core.instret == target
        # cross-check against seek-by-cycle at the state's own cycle
        cycle = recorded.core.cycles
        want = state_of(recorded)
        timeline.seek(cycle)
        assert state_of(recorded) == want


def test_timeline_keeps_fast_path():
    """An armed recorder must NOT disqualify the threaded-dispatch fast
    loop — the watermark rides the budget comparison."""
    src = generate_program(3)
    machine = Machine(assemble(src))
    timeline = machine.attach_timeline(interval=64)
    calls = []
    original = machine.core._run_fast
    machine.core._run_fast = lambda *a: calls.append(a) or original(*a)
    machine.run()
    assert calls, "recording run must stay on the fast loop"
    assert len(timeline.keyframes) >= 3, \
        "watermark keyframes must fire inside the fast loop"


def test_seek_bounds():
    machine = Machine(assemble(generate_program(1, n_blocks=10)))
    with pytest.raises(CycleLimitExceeded):
        machine.run(max_cycles=40)  # pre-roll happens before recording
    timeline = machine.attach_timeline(interval=64)
    machine.run()
    with pytest.raises(ValueError):
        timeline.seek(timeline.start_cycle - 1)
    end_state = None
    timeline.seek(10 ** 9)  # past the end: clamps to the recorded end
    end_state = state_of(machine)
    timeline.seek(timeline.end_cycle)
    assert state_of(machine) == end_state


# ---------------------------------------------------------------------
# scripted multi-run scenario with a mid-sequence protection fault,
# on both system configurations
# ---------------------------------------------------------------------
MODULE = """
.equ KERNEL_MALLOC = {KERNEL_MALLOC}

alloc_and_fill:             ; r24:25 = value -> r24:25 = buffer
    push r16
    push r17
    movw r16, r24
    ldi r24, 8
    ldi r25, 0
    call KERNEL_MALLOC
    cp r24, r1
    cpc r25, r1
    breq done
    movw r26, r24
    st X+, r16
    st X, r17
done:
    pop r17
    pop r16
    ret

poke:                       ; r24:25 = address, r22 = value
    movw r26, r24
    mov r18, r22
    st X, r18
    ret
"""


def _load(system):
    src = MODULE.format(**{k: hex(v)
                           for k, v in system.kernel_symbols().items()})
    return system.load_module(assemble(src, "mod"), "mod",
                              exports=("alloc_and_fill", "poke"))


def _scenario(factory, stop_cycle=None, interval=None):
    """Run the scripted sequence — allocate, fault on a foreign poke,
    allocate again — on a fresh system.  With *stop_cycle*, budget every
    call so execution stops exactly at that cycle, like any live run
    interrupted by a cycle budget.  Returns (system, timeline)."""
    system = factory()
    _load(system)
    victim = system.malloc(8)
    # attach after boot/load/malloc so every recorded cycle falls inside
    # the budgeted export calls below
    timeline = (system.attach_timeline(interval=interval)
                if interval is not None else None)
    machine = system.machine
    ops = [
        ("alloc_and_fill", (0x1111,)),
        ("poke", (victim, ("u8", 0x66))),   # foreign store: faults
        ("alloc_and_fill", (0x2222,)),
    ]
    for export, call_args in ops:
        budget = (1_000_000 if stop_cycle is None
                  else stop_cycle - machine.core.cycles)
        try:
            system.call_export("mod", export, *call_args,
                               max_cycles=budget)
        except ProtectionFault:
            pass
        except CycleLimitExceeded:
            break
        if stop_cycle is not None and machine.core.cycles >= stop_cycle:
            break
    return system, timeline


def _system_state(system):
    snap = MachineSnapshot.capture(system.machine)
    return (snap.data, snap.flash, snap.pc, snap.cycles, snap.instret,
            snap.halted, snap.extra)


@pytest.mark.parametrize("factory", [SfiSystem, UmpuSystem],
                         ids=["sfi", "umpu"])
def test_seek_determinism_on_faulting_system_runs(factory):
    recorded, timeline = _scenario(factory, interval=64)
    timeline.finalize()
    assert timeline.faults, "scenario must record the poke fault"
    fault_cycles = {timeline.keyframes[i].cycles
                    for i, _code in timeline.faults}

    start = timeline.start_cycle
    end = timeline.end_cycle
    span = end - start
    targets = sorted({start + 1, start + span // 4, start + span // 2,
                      start + 3 * span // 4, end - 1, end})
    for target in targets:
        if target in fault_cycles:
            # a fault consumes no cycles, so three distinct machine
            # states share this cycle count; a budget-stopped live run
            # stops before the faulting attempt while seek lands after
            # it — covered by test_fault_window below
            continue
        timeline.seek(target)
        fresh, _ = _scenario(factory, stop_cycle=target)
        assert _system_state(recorded) == _system_state(fresh), \
            "replay diverged from live {} run at cycle {}".format(
                factory.__name__, target)


@pytest.mark.parametrize("factory", [SfiSystem, UmpuSystem],
                         ids=["sfi", "umpu"])
def test_fault_window(factory):
    """The replayed fault window reproduces each system's fault
    mechanism: the UMPU hardware vetoes the store mid-instruction, the
    software Harbor's checked store branches to the panic stub."""
    recorded, timeline = _scenario(factory, interval=64)
    assert [code for _i, code in timeline.faults] == ["memmap"]
    window = timeline.window(before=6)
    assert window
    instrets = [e["instret"] for e in window if e["fault"] is None]
    assert instrets == sorted(instrets)
    last = window[-1]
    if factory is UmpuSystem:
        # hardware fault: the window ends at the vetoed, un-retired
        # store attempt, with live register values
        assert last["fault"] is not None
        assert "st" in last["text"]
        assert last["registers"][18] == 0x66   # the value being stored
        assert all(e["fault"] is None for e in window[:-1])
    else:
        # software Harbor: the checked store branches to the panic stub,
        # which records the fault code and halts; every replayed
        # instruction retires normally
        assert all(e["fault"] is None for e in window)
        assert last["text"].startswith("break")


# ---------------------------------------------------------------------
# run-segment clamping
# ---------------------------------------------------------------------
TWO_CALLS_SRC = """
entry:
    inc r20
    inc r20
    ret
second:
    inc r21
    ret
"""


def test_window_does_not_cross_run_boundaries():
    """A live machine never executes across a run boundary (host code
    intervenes between calls), so a replay window must not either —
    even when ``before`` reaches past the segment start."""
    machine = Machine(assemble(TWO_CALLS_SRC, "two"))
    timeline = machine.attach_timeline(interval=64)
    machine.call("entry")
    machine.call("second")
    window = timeline.window(before=50)
    second = machine.program.symbols["second"]
    assert window, "window must cover the second run"
    assert all(entry["pc"] >= second for entry in window), \
        "window leaked instructions from the previous run segment"
    assert len(window) == 2              # inc r21 ; ret


def test_seek_across_run_segments():
    """Host-side mutations between runs (arguments, sentinel pushes)
    are pinned by the next segment's start keyframe."""
    machine = Machine(assemble(TWO_CALLS_SRC, "two"))
    timeline = machine.attach_timeline(interval=64)
    machine.call("entry")
    mid_state = state_of(machine)
    machine.call("second")
    end_state = state_of(machine)
    mid_cycle = mid_state[3]

    timeline.seek(mid_cycle)
    # between runs several states share the cycle count; seek pins the
    # latest (the next run's entry), so r20 must already hold both incs
    assert machine.core.reg(20) == 2
    assert machine.core.cycles == mid_cycle
    timeline.seek(end_state[3])
    assert state_of(machine) == end_state


# ---------------------------------------------------------------------
# reverse-step
# ---------------------------------------------------------------------
def test_reverse_step():
    src = generate_program(11)
    machine = Machine(assemble(src))
    timeline = machine.attach_timeline(interval=128)
    debugger = machine.attach_debugger()
    machine.run()
    end_instret = machine.core.instret
    end_state = state_of(machine)

    pc_byte = debugger.reverse_step(4)
    assert machine.core.instret == end_instret - 4
    assert pc_byte == machine.core.pc * 2
    # going forward again reconverges bit-identically
    timeline.seek_instret(end_instret)
    assert state_of(machine) == end_state


def test_reverse_step_requires_timeline():
    machine = Machine(assemble(generate_program(12, n_blocks=5)))
    debugger = machine.attach_debugger()
    machine.run()
    with pytest.raises(RuntimeError):
        debugger.reverse_step()


# ---------------------------------------------------------------------
# replayed windows carry live state
# ---------------------------------------------------------------------
COUNT_SRC = """
entry:
    ldi r16, 5
loop:
    inc r17
    dec r16
    brne loop
    break
"""


def test_window_registers_are_live():
    machine = Machine(assemble(COUNT_SRC, "count"))
    timeline = machine.attach_timeline(interval=64)
    machine.run()
    window = timeline.window(before=100)
    # r17 counts up live across the replayed loop iterations
    seen = [e["registers"][17] for e in window
            if e["text"].startswith("inc")]
    assert seen == [1, 2, 3, 4, 5]
    instrets = [e["instret"] for e in window]
    assert instrets == sorted(instrets)
    assert all(e["sp"] for e in window)


# ---------------------------------------------------------------------
# block heat + speedscope export
# ---------------------------------------------------------------------
def test_block_heat_accounts_every_replayed_cycle():
    src = generate_program(2)
    machine = Machine(assemble(src))
    timeline = machine.attach_timeline(interval=256)
    machine.run()
    timeline.finalize()

    heat = BlockHeat.from_machine(machine).feed(timeline)
    replayed = timeline.end_cycle - timeline.start_cycle
    assert heat.total_cycles == replayed
    assert sum(cell.cycles for cell in heat.cells.values()) == replayed
    ranked = heat.rank(top=5)
    assert ranked and ranked[0][6] >= ranked[-1][6]
    text = heat.render(top=5)
    assert "cycles replayed" in text

    doc = to_speedscope(heat, name="fuzz")
    json.dumps(doc)
    profile = doc["profiles"][0]
    assert len(profile["samples"]) == len(profile["weights"])
    assert profile["endValue"] == sum(profile["weights"]) == replayed
    assert doc["shared"]["frames"]
    assert all(s[0] < len(doc["shared"]["frames"])
               for s in profile["samples"])


# ---------------------------------------------------------------------
# forensics windows come from replay when a timeline is attached
# ---------------------------------------------------------------------
@pytest.mark.parametrize("factory", [SfiSystem, UmpuSystem],
                         ids=["sfi", "umpu"])
def test_forensics_window_is_replay_backed(factory):
    system = factory()
    _load(system)
    victim = system.malloc(8)
    timeline = system.attach_timeline(interval=64)
    with pytest.raises(ProtectionFault) as excinfo:
        system.call_export("mod", "poke", victim, ("u8", 0x66))
    report = excinfo.value.report
    assert report is not None
    assert report.window_source == "replay"
    text = report.text()
    assert "last instructions (replay)" in text
    assert "SREG=" in text
    if factory is UmpuSystem:
        assert any(entry.get("fault") for entry in report.instr_window)
        assert "<-- FAULT" in text
    # replaying for the report must not move the live machine off the
    # at-fault state, and the vetoed value never reached the victim
    assert system.machine.core.cycles == timeline.fault_cycle
    assert system.machine.memory.read_data(victim) == 0


# ---------------------------------------------------------------------
# metrics counters
# ---------------------------------------------------------------------
def test_metrics_counters_track_recording_and_replay():
    src = generate_program(4)
    machine = Machine(assemble(src))
    registry = machine.attach_metrics()
    timeline = machine.attach_timeline(interval=128)
    machine.run()
    timeline.finalize()
    timeline.seek(timeline.start_cycle
                  + (timeline.end_cycle - timeline.start_cycle) // 2)
    registry.sample(machine)

    assert registry.counter("instret").value == machine.core.instret
    assert registry.counter("snapshot_keyframes").value \
        == len(timeline.keyframes)
    reexec = registry.counter("replay_reexec_cycles").value
    assert reexec == timeline.reexec_cycles > 0
    # sampling again must not double-count
    registry.sample(machine)
    assert registry.counter("replay_reexec_cycles").value == reexec


# ---------------------------------------------------------------------
# the JSON index
# ---------------------------------------------------------------------
def test_timeline_json_index(tmp_path):
    recorded, timeline = _scenario(UmpuSystem, interval=64)
    path = str(tmp_path / "timeline.json")
    timeline.write(path)
    with open(path) as handle:
        doc = json.load(handle)
    assert doc["schema"] == TIMELINE_SCHEMA
    assert doc["interval"] == 64
    assert len(doc["keyframes"]) == len(timeline.keyframes)
    for entry in doc["keyframes"]:
        assert set(entry) == {"cycle", "instret", "pc", "halted", "tag",
                              "data_crc32", "flash_id"}
    assert doc["segments"][0] == 0
    assert len(doc["segments"]) >= 3     # record + one per call
    assert doc["faults"] and doc["faults"][0]["code"]
    assert doc["stats"]["keyframes"] == len(timeline.keyframes)
