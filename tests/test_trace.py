"""The observability layer: trace sink, per-domain profiler, exporters.

Covers the tentpole guarantees: tracing is purely observational (cycle
counts identical with the sink attached or not), the profiler's
attribution sums exactly to the core's cycle counter on machine-level
workloads (including cross-domain calls, MMC stalls and interrupts),
and the exporters produce a loadable Chrome trace / readable report.
"""

import json

import pytest

from repro.asm import assemble
from repro.core.encoding import TRUSTED_DOMAIN
from repro.core.faults import MemMapFault
from repro.sim import InterruptController, Machine
from repro.sim.devices import PeriodicTimer
from repro.trace import (
    DomainProfiler,
    TraceEventKind,
    TraceSink,
    flat_report,
    install_profiler,
    install_tracing,
    to_chrome_trace,
    uninstall,
)
from repro.umpu import HarborLayout, UmpuMachine, UmpuSystem

LOOP_SRC = """
main:
    ldi r24, 4
outer:
    call work
    dec r24
    brne outer
    break
work:
    ldi r26, 0x00
    ldi r27, 0x03
    ldi r18, 4
fill:
    st X+, r18
    dec r18
    brne fill
    ret
"""


# ---------------------------------------------------------------------
# TraceSink mechanics
# ---------------------------------------------------------------------
def test_sink_is_a_bounded_ring():
    sink = TraceSink(capacity=3)
    for cycle in range(5):
        sink.emit(cycle, TraceEventKind.INSTR_RETIRE, key="nop")
    assert len(sink) == 3
    assert sink.emitted == 5
    assert sink.dropped == 2
    assert [e.cycle for e in sink] == [2, 3, 4]  # oldest dropped


def test_sink_counts_and_filters():
    sink = TraceSink()
    sink.emit(0, TraceEventKind.INSTR_RETIRE, key="nop")
    sink.emit(1, TraceEventKind.MMC_STALL, addr=0x200)
    sink.emit(2, TraceEventKind.MMC_STALL, addr=0x208)
    counts = sink.counts()
    assert counts[TraceEventKind.MMC_STALL] == 2
    assert [e.get("addr") for e in sink.of(TraceEventKind.MMC_STALL)] \
        == [0x200, 0x208]
    sink.clear()
    assert len(sink) == 0 and sink.emitted == 0


def test_sink_rejects_bad_capacity():
    with pytest.raises(ValueError):
        TraceSink(capacity=0)


def test_wraparound_semantics_survive_export():
    """After the ring wraps, exporters must see exactly the retained
    window, oldest first, with consistent emitted/dropped accounting."""
    sink = TraceSink(capacity=8)
    for i in range(20):
        sink.emit(i + 1, TraceEventKind.INSTR_RETIRE, pc=2 * i,
                  key="nop", cycles=1)
    assert sink.emitted == 20
    assert sink.dropped == 12
    assert len(sink) == 8
    # the retained window is the most recent events, oldest first
    assert [e.cycle for e in sink] == list(range(13, 21))
    assert [e.cycle for e in sink.of(TraceEventKind.INSTR_RETIRE)] \
        == list(range(13, 21))
    assert sink.counts()[TraceEventKind.INSTR_RETIRE] == 8

    doc = to_chrome_trace(sink)
    slices = [e for e in doc["traceEvents"]
              if e["ph"] == "X" and e["cat"] == "instr"]
    assert len(slices) == 8
    timestamps = [e["ts"] for e in slices]
    assert timestamps == sorted(timestamps)
    assert timestamps[0] == 12  # cycle 13, 1-cycle duration

    from repro.trace import DomainProfiler
    report = flat_report(DomainProfiler(), sink)
    assert "20 emitted, 8 retained, 12 dropped" in report


# ---------------------------------------------------------------------
# Tracing is observational: cycles are byte-identical either way
# ---------------------------------------------------------------------
def test_tracing_does_not_change_cycle_counts():
    plain = Machine(assemble(LOOP_SRC, "loop"))
    plain.run()

    traced = Machine(assemble(LOOP_SRC, "loop"))
    sink = install_tracing(traced)
    traced.run()
    assert traced.core.cycles == plain.core.cycles
    assert len(sink) > 0

    # and detaching restores the untouched fast path
    uninstall(traced)
    assert traced.core.trace is None and traced.bus.trace is None


def test_retire_events_cover_every_cycle():
    machine = Machine(assemble(LOOP_SRC, "loop"))
    sink = install_tracing(machine)
    machine.run()
    retired = sink.of(TraceEventKind.INSTR_RETIRE)
    assert sum(e.get("cycles") for e in retired) == machine.core.cycles
    # events carry byte PCs inside the program
    assert all(e.pc is not None and e.pc % 2 == 0 for e in retired)


def test_control_transfer_events():
    machine = Machine(assemble(LOOP_SRC, "loop"))
    sink = install_tracing(machine)
    machine.run()
    transfers = sink.of(TraceEventKind.CONTROL_TRANSFER)
    kinds = {e.get("transfer") for e in transfers}
    assert kinds == {"call", "ret"}
    calls = [e for e in transfers if e.get("transfer") == "call"]
    assert len(calls) == 4  # outer loop iterations


# ---------------------------------------------------------------------
# UMPU unit events
# ---------------------------------------------------------------------
def _umpu_workload():
    from repro.analysis.microbench import attribution_breakdown
    return attribution_breakdown(iterations=4)


def test_umpu_events_emitted():
    machine, _profiler, sink = _umpu_workload()
    assert sink.of(TraceEventKind.MMC_STALL)
    assert sink.of(TraceEventKind.SAFE_STACK_REDIRECT)
    switches = sink.of(TraceEventKind.DOMAIN_SWITCH)
    vias = {e.get("via") for e in switches}
    assert vias == {"call", "ret"}
    # each cross call is matched by a cross return
    assert machine.tracker.cross_calls == machine.tracker.cross_returns


def test_mmc_stall_events_match_checked_stores():
    machine, profiler, sink = _umpu_workload()
    stalls = sink.of(TraceEventKind.MMC_STALL)
    assert len(stalls) == machine.mmc.checked_stores
    assert profiler.by_category()["mmc-stall"] == len(stalls)


def test_protection_fault_event():
    layout = HarborLayout()
    src = """
    poke:
        ldi r26, 0x00
        ldi r27, 0x04
        ldi r18, 7
        st X, r18
        ret
    """
    machine = UmpuMachine(assemble(src, "poke"), layout=layout)
    machine.memmap.set_segment(0x0400, 8, 1)  # owned by domain 1
    machine.tracker.register_code_region(0, 0, layout.jt_base)
    sink = install_tracing(machine)
    machine.enter_domain(0)
    with pytest.raises(MemMapFault):
        machine.call("poke")
    faults = sink.of(TraceEventKind.PROTECTION_FAULT)
    assert len(faults) == 1
    assert faults[0].get("why") == "memmap"
    assert faults[0].get("addr") == 0x0400
    assert faults[0].domain == 0


# ---------------------------------------------------------------------
# DomainProfiler: exact attribution
# ---------------------------------------------------------------------
def test_profiler_balances_on_mixed_workload():
    machine, profiler, _sink = _umpu_workload()
    total = profiler.assert_balanced(machine.core)
    assert total == machine.core.cycles - profiler.start_cycle
    by_cat = profiler.by_category()
    # 4 checked stores -> 4 MMC stall cycles
    assert by_cat["mmc-stall"] == 4
    # 4 cross calls + 4 cross rets, 5 stall cycles each
    assert by_cat["safe-stack"] == 40
    by_domain = profiler.by_domain()
    assert set(by_domain) == {0, 1, TRUSTED_DOMAIN}


def test_profiler_balances_under_interrupts():
    src = """
        jmp main
        jmp handler
    main:
        sei
    spin:
        inc r20
        cpi r20, 60
        brne spin
        break
    handler:
        inc r16
        reti
    """
    machine = UmpuMachine(assemble(src, "irq"), layout=HarborLayout())
    controller = InterruptController(machine.core, nvectors=4,
                                    vector_stride_words=2)
    PeriodicTimer(controller, line=1, period=25).install(machine.core)
    sink = install_tracing(machine)
    profiler = install_profiler(machine)
    machine.run(max_cycles=100000)
    profiler.assert_balanced(machine.core)
    assert controller.taken > 0
    by_cat = profiler.by_category()
    assert by_cat["irq"] == 4 * controller.taken
    # the tracker sequences a cross-domain frame per interrupt
    assert by_cat["safe-stack"] == 10 * controller.taken
    assert len(sink.of(TraceEventKind.IRQ_ENTER)) == controller.taken
    assert len(sink.of(TraceEventKind.IRQ_EXIT)) == controller.taken


def test_profiler_balances_on_full_umpu_system():
    """End-to-end: module load + jump-table dispatch + kernel malloc +
    checked stores — every cycle lands in a bucket (the acceptance
    criterion's sensor-node analog at machine level)."""
    system = UmpuSystem()
    profiler = system.machine.attach_profiler()
    sink = system.machine.attach_trace()
    src = """
    .equ KERNEL_MALLOC = {KERNEL_MALLOC}
    work:
        ldi r24, 8
        ldi r25, 0
        call KERNEL_MALLOC
        cp r24, r1
        cpc r25, r1
        breq out
        movw r26, r24
        ldi r18, 0x5A
        st X, r18
    out:
        ret
    """.format(**{k: hex(v) for k, v in system.kernel_symbols().items()})
    system.load_module(assemble(src, "mod"), "mod", exports=("work",))
    for _ in range(3):
        value, _cycles = system.call_export("mod", "work")
        assert value, "malloc failed"
    profiler.assert_balanced(system.machine.core)
    by_cat = profiler.by_category()
    assert by_cat["mmc-stall"] >= 3       # the module's own stores
    assert by_cat["safe-stack"] >= 30     # dispatch frames
    assert 0 in profiler.by_domain()      # module domain visible
    assert sink.of(TraceEventKind.DOMAIN_SWITCH)


def test_profiler_runtime_region_classification():
    machine = Machine(assemble(LOOP_SRC, "loop"))
    work = machine.program.symbol("work")
    profiler = install_profiler(
        machine, runtime_region=(work, work + 0x40))
    machine.run()
    by_cat = profiler.by_category()
    assert by_cat["runtime-checks"] > 0
    assert by_cat["app"] > 0
    profiler.assert_balanced(machine.core)


def test_out_of_step_charges_are_ignored():
    profiler = DomainProfiler()
    profiler.charge("mmc-stall", 5)  # no step open: host-side helper
    assert profiler.total() == 0


# ---------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------
def test_chrome_trace_structure():
    machine, _profiler, sink = _umpu_workload()
    doc = to_chrome_trace(sink)
    json.dumps(doc)  # must be serializable as-is
    events = doc["traceEvents"]
    assert events, "no events exported"
    phases = {e["ph"] for e in events}
    assert phases <= {"X", "i", "M"}
    slices = [e for e in events if e["ph"] == "X" and e["cat"] == "instr"]
    assert slices
    assert all(e["ts"] >= 0 and e["dur"] >= 1 for e in slices)
    names = [e["args"]["name"] for e in events
             if e["ph"] == "M" and e["name"] == "thread_name"]
    assert "trusted" in names and "domain 0" in names


def test_chrome_trace_golden():
    """Pin the exact exporter output — per-track metadata events
    included — so Perfetto/about://tracing tooling can rely on the
    shape (tracks pre-named and pre-sorted per protection domain)."""
    sink = TraceSink(capacity=8)
    sink.emit(3, TraceEventKind.INSTR_RETIRE, pc=0x10, key="ldi",
              cycles=1)
    sink.emit(5, TraceEventKind.DOMAIN_SWITCH, pc=0x12, domain=0,
              target=0x0200)
    sink.emit(7, TraceEventKind.INSTR_RETIRE, pc=0x200, domain=0,
              key="st_x", cycles=2)
    doc = to_chrome_trace(sink, pid=1, process_name="node-a")
    assert doc == {
        "traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 1,
             "args": {"name": "node-a"}},
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "cpu"}},
            {"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 0,
             "args": {"sort_index": 0}},
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
             "args": {"name": "domain 0"}},
            {"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 1,
             "args": {"sort_index": 1}},
            {"name": "ldi", "cat": "instr", "ph": "X", "ts": 2,
             "dur": 1, "pid": 1, "tid": 0,
             "args": {"key": "ldi", "cycles": 1, "pc": "0x0010"}},
            {"name": "domain_switch", "cat": "protection", "ph": "i",
             "s": "t", "ts": 5, "pid": 1, "tid": 1,
             "args": {"target": "0x0200", "pc": "0x0012"}},
            {"name": "st_x", "cat": "instr", "ph": "X", "ts": 5,
             "dur": 2, "pid": 1, "tid": 1,
             "args": {"key": "st_x", "cycles": 2, "pc": "0x0200"}},
        ],
        "displayTimeUnit": "ms",
    }


def test_flat_report_renders():
    machine, profiler, sink = _umpu_workload()
    text = flat_report(profiler, sink)
    assert "mmc-stall" in text
    assert "trusted" in text
    assert "TOTAL" in text
    assert "dropped" in text
