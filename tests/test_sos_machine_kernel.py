"""Machine-level SOS kernel on both protected systems.

The same assembly modules are driven through the message dispatcher on
the SFI node and the UMPU node, exercising cycle-accurate dispatch,
fault containment and recovery.
"""

import pytest

from repro.asm import assemble
from repro.core.faults import MemMapFault
from repro.sfi import SfiSystem
from repro.sos.machine_kernel import MachineKernel
from repro.sos.messaging import MSG_DATA_READY, MSG_TIMER_TIMEOUT
from repro.umpu import UmpuSystem

# Module state lives in a kernel-allocated cell owned by the module's
# domain; its address arrives as the message argument (the SOS idiom:
# the kernel hands modules their state handle — modules have no globals
# in trusted RAM).
COUNTER = """
handle_msg:                 ; r24:25 = mtype, r22:23 = &counter cell
    movw r26, r22
    ld r20, X
    inc r20
    st X, r20               ; checked store into our own domain
    mov r24, r20
    ldi r25, 0
    ret
"""

WILD = """
handle_msg:                 ; arg = address to scribble on
    movw r26, r22
    ldi r18, 0x66
    st X, r18
    ret
"""


def make_kernel(system_cls):
    system = system_cls()
    kernel = MachineKernel(system)
    record = kernel.load_module(assemble(COUNTER, "counter"), "counter")
    cell = system.malloc(2, domain=record.module.domain)
    return system, kernel, cell


@pytest.mark.parametrize("system_cls", [SfiSystem, UmpuSystem],
                         ids=["sfi", "umpu"])
def test_message_dispatch_counts(system_cls):
    system, kernel, cell = make_kernel(system_cls)
    for _ in range(5):
        kernel.post("counter", MSG_TIMER_TIMEOUT, arg=cell)
    assert kernel.run() == 5
    assert system.machine.memory.read_data(cell) == 5
    assert kernel.records["counter"].messages_handled == 5
    assert kernel.total_cycles > 0


@pytest.mark.parametrize("system_cls", [SfiSystem, UmpuSystem],
                         ids=["sfi", "umpu"])
def test_fault_containment_and_recovery(system_cls):
    system = system_cls()
    kernel = MachineKernel(system)
    kernel.load_module(assemble(WILD, "wild"), "wild")
    victim = system.malloc(8)
    kernel.post("wild", MSG_DATA_READY, arg=victim)
    kernel.run()
    assert len(kernel.fault_log) == 1
    assert isinstance(kernel.fault_log[0].fault, MemMapFault)
    assert kernel.records["wild"].state == "crashed"
    assert system.machine.memory.read_data(victim) == 0
    # crashed: further messages are dropped
    kernel.post("wild", MSG_DATA_READY, arg=victim)
    kernel.run()
    assert len(kernel.fault_log) == 1
    # restart: the module may write its OWN memory again
    kernel.restart_module("wild")
    own = system.malloc(8, domain=kernel.records["wild"].module.domain)
    kernel.post("wild", MSG_DATA_READY, arg=own)
    kernel.run()
    assert system.machine.memory.read_data(own) == 0x66
    assert kernel.records["wild"].state == "loaded"


def test_same_module_cheaper_on_umpu():
    """Dispatch cost: identical module + message sequence, both nodes."""
    _s1, sfi_kernel, c1 = make_kernel(SfiSystem)
    _s2, umpu_kernel, c2 = make_kernel(UmpuSystem)
    for kernel, cell in ((sfi_kernel, c1), (umpu_kernel, c2)):
        for _ in range(3):
            kernel.post("counter", MSG_TIMER_TIMEOUT, arg=cell)
        kernel.run()
    sfi_cycles = sfi_kernel.records["counter"].cycles
    umpu_cycles = umpu_kernel.records["counter"].cycles
    assert umpu_cycles < sfi_cycles / 2


def test_two_modules_interleaved_messages():
    system, kernel, c1 = make_kernel(SfiSystem)
    rec2 = kernel.load_module(assemble(COUNTER, "counter2"), "counter2")
    c2 = system.malloc(2, domain=rec2.module.domain)
    for i in range(6):
        if i % 2 == 0:
            kernel.post("counter", MSG_TIMER_TIMEOUT, arg=c1)
        else:
            kernel.post("counter2", MSG_TIMER_TIMEOUT, arg=c2)
    kernel.run()
    assert system.machine.memory.read_data(c1) == 3
    assert system.machine.memory.read_data(c2) == 3
    # and the two counters live in different domains' memory
    assert system.memmap.owner_of(c1) == 0
    assert system.memmap.owner_of(c2) == 1
    # cross-check: counter2 may NOT bump counter1's cell
    kernel.post("counter2", MSG_TIMER_TIMEOUT, arg=c1)
    kernel.run()
    assert kernel.records["counter2"].state == "crashed"
    assert system.machine.memory.read_data(c1) == 3
