"""Sanity of the instruction spec table itself."""

import pytest

from repro.isa.opcodes import (
    BRANCH_ALIASES,
    FLAG_ALIASES,
    REG_ALIASES,
    SPECS,
    SPEC_BY_KEY,
    SPEC_BY_MNEMONIC,
    spec_for,
)
from repro.isa.registers import ATMEGA103, IoReg, SREG_BITS, pair_name


def test_keys_unique():
    keys = [s.key for s in SPECS]
    assert len(keys) == len(set(keys))


def test_pattern_lengths():
    for spec in SPECS:
        bits = spec.pattern.replace(" ", "")
        assert len(bits) in (16, 32), spec.key
        assert spec.size_words == len(bits) // 16
        assert spec.size_bytes == spec.size_words * 2


def test_pattern_field_letters_match_operands():
    for spec in SPECS:
        bits = spec.pattern.replace(" ", "")
        letters = {c for c in bits if c not in "01"}
        declared = {op.letter for op in spec.operands}
        assert letters == declared, spec.key


def test_cycles_positive_and_sane():
    for spec in SPECS:
        assert 1 <= spec.cycles <= 4, spec.key


@pytest.mark.parametrize("key,cycles", [
    ("add", 1), ("ldi", 1), ("mov", 1), ("movw", 1), ("in", 1), ("out", 1),
    ("adiw", 2), ("mul", 2), ("ld_x", 2), ("st_x", 2), ("lds", 2),
    ("sts", 2), ("push", 2), ("pop", 2), ("sbi", 2), ("rjmp", 2),
    ("ijmp", 2), ("jmp", 3), ("rcall", 3), ("icall", 3), ("lpm", 3),
    ("call", 4), ("ret", 4), ("reti", 4),
])
def test_datasheet_cycle_costs(key, cycles):
    assert spec_for(key).cycles == cycles


def test_store_specs_classified():
    stores = [s for s in SPECS if s.kind == "store"]
    assert {s.key for s in stores} == {
        "st_x", "st_xp", "st_mx", "st_yp", "st_my", "st_zp", "st_mz",
        "std_y", "std_z", "sts"}


def test_call_specs_classified():
    calls = [s.key for s in SPECS if s.kind == "call"]
    assert set(calls) == {"call", "rcall", "icall"}


def test_mnemonic_variants():
    assert len(SPEC_BY_MNEMONIC["ld"]) == 7
    assert len(SPEC_BY_MNEMONIC["st"]) == 7
    assert len(SPEC_BY_MNEMONIC["ldd"]) == 2
    assert len(SPEC_BY_MNEMONIC["std"]) == 2
    assert len(SPEC_BY_MNEMONIC["lpm"]) == 3


def test_branch_aliases_complete():
    # every SREG flag has a set- and clear- branch alias
    flags = set(range(8))
    bs_flags = {f for (k, f) in BRANCH_ALIASES.values() if k == "brbs"}
    bc_flags = {f for (k, f) in BRANCH_ALIASES.values() if k == "brbc"}
    assert bs_flags == flags
    assert bc_flags == flags


def test_flag_aliases_complete():
    set_flags = {f for (k, f) in FLAG_ALIASES.values() if k == "bset"}
    clr_flags = {f for (k, f) in FLAG_ALIASES.values() if k == "bclr"}
    assert set_flags == set(range(8))
    assert clr_flags == set(range(8))


def test_reg_aliases():
    assert REG_ALIASES == {"lsl": "add", "rol": "adc", "tst": "and",
                           "clr": "eor"}


def test_spec_for_unknown_raises():
    with pytest.raises(KeyError):
        spec_for("frobnicate")


def test_modes_on_ldst():
    assert SPEC_BY_KEY["ld_xp"].modes["post_inc"]
    assert SPEC_BY_KEY["ld_mx"].modes["pre_dec"]
    assert SPEC_BY_KEY["std_y"].modes["disp"]
    assert SPEC_BY_KEY["st_x"].modes["ptr"] == "X"
    assert SPEC_BY_KEY["std_z"].modes["ptr"] == "Z"


# ---------------------------------------------------------------------
# geometry / registers
# ---------------------------------------------------------------------
def test_atmega103_geometry():
    g = ATMEGA103
    assert g.flash_bytes == 131072
    assert g.flash_words == 65536
    assert g.sram_start == 0x60
    assert g.data_end == 0x0FFF
    assert g.data_space_bytes == 4096
    assert g.sram_bytes == 4000
    assert g.ramend == 0x0FFF


def test_geometry_classification():
    g = ATMEGA103
    assert g.is_register(0) and g.is_register(31)
    assert not g.is_register(32)
    assert g.is_io(0x20) and g.is_io(0x5F)
    assert not g.is_io(0x60)
    assert g.is_sram(0x60) and g.is_sram(0xFFF)
    assert not g.is_sram(0x1000)


def test_sreg_bits():
    assert SREG_BITS.bit("C") == 0
    assert SREG_BITS.bit("I") == 7
    assert SREG_BITS.name(1) == "Z"
    assert SREG_BITS.name(SREG_BITS.bit("H")) == "H"


def test_pair_names():
    assert pair_name(26) == "X"
    assert pair_name(28) == "Y"
    assert pair_name(30) == "Z"
    assert pair_name(2) == "r3:r2"


def test_umpu_register_window():
    assert IoReg.MEM_MAP_BASE_L in IoReg.UMPU_REGISTERS
    assert IoReg.UMPU_CTRL in IoReg.UMPU_REGISTERS
    assert IoReg.SPL not in IoReg.UMPU_REGISTERS
    # the window must not collide with SPL/SPH/SREG
    for io in IoReg.UMPU_REGISTERS:
        assert io not in (IoReg.SPL, IoReg.SPH, IoReg.SREG)
