"""Differential tests: the three implementations of the Harbor
protection model — golden Python model, SFI-rewritten software, UMPU
hardware — must agree on what is allowed and what faults.

This is the repo's strongest correctness argument: the same store
scenarios are executed behaviourally, through the rewritten binary on a
stock core, and natively on the extended core, and the verdicts are
compared.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.core.checker import CheckContext, WriteChecker
from repro.core.encoding import TRUSTED_DOMAIN
from repro.core.faults import ProtectionFault
from repro.core.memmap import MemMapConfig, MemoryMap
from repro.sfi.layout import SfiLayout
from repro.sfi.runtime_asm import build_runtime
from repro.sim import Machine
from repro.umpu import HarborLayout, UmpuMachine

SFI_LAYOUT = SfiLayout()
UMPU_LAYOUT = HarborLayout(
    memmap_table=SFI_LAYOUT.memmap_table,
    prot_bottom=SFI_LAYOUT.prot_bottom,
    prot_top=SFI_LAYOUT.prot_top,
    safe_stack_base=SFI_LAYOUT.safe_stack_base,
    jt_base=SFI_LAYOUT.jt_base)
RUNTIME = build_runtime(SFI_LAYOUT)

#: the shared scenario: two owned segments + free space + stack window
SEGMENTS = [(0x0300, 64, 0), (0x0400, 64, 1), (0x0500, 64, 2)]


def golden_verdict(addr, domain, stack_bound):
    memmap = MemoryMap(MemMapConfig(SFI_LAYOUT.prot_bottom,
                                    SFI_LAYOUT.prot_top, 8, "multi"))
    for base, size, owner in SEGMENTS:
        memmap.set_segment(base, size, owner)
    checker = WriteChecker(CheckContext(memmap, cur_domain=domain,
                                        stack_bound=stack_bound))
    try:
        checker.check(addr)
        return "ok"
    except ProtectionFault as exc:
        return type(exc).__name__


def sfi_verdict(addr, domain, stack_bound):
    machine = Machine(RUNTIME)
    machine.call("hb_init", max_cycles=100000)
    mem = machine.memory
    for base, size, owner in SEGMENTS:
        _mark(machine, base, size, owner)
    mem.write_data(SFI_LAYOUT.cur_dom, domain)
    mem.write_word_data(SFI_LAYOUT.stack_bound, stack_bound)
    machine.core.set_reg_pair(26, addr)
    machine.core.set_reg(18, 0xA5)
    machine.call("hb_st_x", max_cycles=10000)
    code = mem.read_data(SFI_LAYOUT.fault_code)
    if code:
        from repro.sfi.layout import FAULT_NAMES
        return FAULT_NAMES[code]
    return "ok"


def _mark(machine, base, size, owner):
    machine.core.set_reg_pair(26, base)
    machine.core.set_reg_pair(20, size)
    machine.core.set_reg(18, (owner << 1) | 1)
    machine.core.set_reg(19, owner << 1)
    machine.call("hb_mmap_mark", max_cycles=10000)


_UMPU_PROG = assemble("store_fn:\n    st X, r18\n    ret\n")


def umpu_verdict(addr, domain, stack_bound):
    machine = UmpuMachine(_UMPU_PROG, layout=UMPU_LAYOUT)
    for base, size, owner in SEGMENTS:
        machine.memmap.set_segment(base, size, owner)
    machine.enter_domain(domain, stack_bound=stack_bound)
    machine.core.set_reg_pair(26, addr)
    machine.core.set_reg(18, 0xA5)
    try:
        machine.call("store_fn", max_cycles=10000)
        return "ok"
    except ProtectionFault as exc:
        return type(exc).__name__


#: verdict vocabulary mapping (SFI uses fault-code names)
_EQUIV = {
    "ok": "ok",
    "MemMapFault": "memmap",
    "StackBoundFault": "stack_bound",
    "UntrustedAccessFault": "outside_region",
}


INTERESTING_ADDRS = [
    0x0010,   # register file
    0x0100,   # trusted globals
    0x01FF,   # just below the protected region
    0x0200,   # first protected byte (free)
    0x0300, 0x033F,  # domain 0's segment
    0x0340,   # just past it
    0x0400,   # domain 1's
    0x0500,   # domain 2's
    0x0CFF,   # last protected byte
    0x0D00,   # stack window start
    0x0E00, 0x0E01,  # around the default bound we test with
    0x0FD0,   # deep in the run-time stack
]
# Note: addresses within ~32 bytes of RAMEND are excluded — the SFI
# harness keeps its sentinel return address and the stub's transient
# frame there, and a trusted store over them is legal but derails the
# *harness* (on UMPU the safe-stack unit moves return addresses out of
# harm's way, which is rather the paper's point).


@pytest.mark.parametrize("domain", [0, 1, TRUSTED_DOMAIN])
@pytest.mark.parametrize("addr", INTERESTING_ADDRS)
def test_three_way_agreement(addr, domain):
    bound = 0x0E00
    golden = golden_verdict(addr, domain, bound)
    sfi = sfi_verdict(addr, domain, bound)
    umpu = umpu_verdict(addr, domain, bound)
    assert _EQUIV[golden] == sfi, (hex(addr), domain, golden, sfi)
    assert golden == umpu, (hex(addr), domain, golden, umpu)


@settings(max_examples=40, deadline=None)
@given(addr=st.integers(0x40, 0xFD0), domain=st.integers(0, 3),
       bound=st.integers(0xD80, 0xFFF))
def test_property_three_way_agreement(addr, domain, bound):
    golden = golden_verdict(addr, domain, bound)
    assert _EQUIV[golden] == sfi_verdict(addr, domain, bound)
    assert golden == umpu_verdict(addr, domain, bound)


def test_sfi_and_umpu_reach_same_memory_state():
    """Run the same logical module workload on both systems; the final
    data memory contents of the touched region must match."""
    workload = """
    work:
        movw r26, r24       ; base address
        ldi r18, 5
    fill:
        st X+, r18
        dec r18
        brne fill
        ret
    """
    base = 0x0300

    # UMPU: run natively with hardware protection
    umpu = UmpuMachine(assemble(workload), layout=UMPU_LAYOUT)
    umpu.memmap.set_segment(base, 8, 0)
    umpu.tracker.register_code_region(0, 0, 0x1000)
    umpu.enter_domain(0)
    umpu.call("work", base)
    umpu_bytes = umpu.read_bytes(base, 8)

    # SFI: rewrite the same module and run on a stock core
    from repro.sfi.rewriter import Rewriter
    rewriter = Rewriter(RUNTIME.symbols, SFI_LAYOUT)
    res = rewriter.rewrite(assemble(workload), SFI_LAYOUT.jt_end,
                           exports=("work",))
    sfi = Machine(RUNTIME)
    for w, v in res.program.words.items():
        sfi.memory.write_flash_word(w, v)
    sfi.call("hb_init", max_cycles=100000)
    _mark(sfi, base, 8, 0)
    sfi.memory.write_data(SFI_LAYOUT.cur_dom, 0)
    sfi.call(res.exports["work"], base, max_cycles=100000)
    sfi_bytes = sfi.read_bytes(base, 8)

    assert umpu_bytes == sfi_bytes == bytes([5, 4, 3, 2, 1, 0, 0, 0])


# ---------------------------------------------------------------------
# ISA compatibility under random programs
# ---------------------------------------------------------------------
_ALU_KEYS = ["add", "adc", "sub", "sbc", "and", "or", "eor", "mov",
             "com", "neg", "inc", "dec", "swap", "lsr", "asr", "ror",
             "cp", "cpc"]


@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(_ALU_KEYS), st.integers(0, 31),
              st.integers(0, 31)),
    min_size=1, max_size=40),
    st.lists(st.integers(0, 255), min_size=32, max_size=32))
def test_property_random_programs_isa_compatible(ops, regs):
    """Random ALU programs run identically (state AND cycles) on the
    stock core and on the extended core with protection disabled — the
    paper's 'instruction set compatible with regular AVR' property."""
    from repro.isa.encoding import encode
    from repro.asm.program import Program

    program = Program()
    addr = 0
    for key, d, r in ops:
        operands = (d, r) if key in ("add", "adc", "sub", "sbc", "and",
                                     "or", "eor", "mov", "cp",
                                     "cpc") else (d,)
        for w in encode(key, operands):
            program.set_word(addr, w)
            addr += 1
    program.set_word(addr, 0x9598)  # break

    def run(machine_cls, **kw):
        machine = machine_cls(program, **kw)
        for i, v in enumerate(regs):
            machine.core.set_reg(i, v)
        machine.run(max_cycles=10000)
        return (bytes(machine.memory.data[:32]), machine.memory.sreg,
                machine.core.cycles)

    plain = run(Machine)
    umpu = run(UmpuMachine)  # units constructed but disabled
    assert plain == umpu
