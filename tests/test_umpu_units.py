"""UMPU functional units: registers, MMC, safe-stack unit, tracker.

Includes the differential property test: the MMC must agree with the
golden-model WriteChecker on every store.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.checker import CheckContext, WriteChecker
from repro.core.encoding import TRUSTED_DOMAIN
from repro.core.faults import (
    ConfigFault,
    JumpTableFault,
    MemMapFault,
    ProtectionFault,
    SafeStackOverflow,
    StackBoundFault,
    UntrustedAccessFault,
)
from repro.core.memmap import MemMapConfig, MemoryBackedStorage, MemoryMap
from repro.isa.registers import IoReg
from repro.sim import AccessKind, DataBus, Memory
from repro.umpu import (
    MMC_STALL_CYCLES,
    MemMapController,
    SafeStackUnit,
    UmpuRegisters,
)
from repro.umpu.domain_tracker import DomainTracker


# ---------------------------------------------------------------------
# registers
# ---------------------------------------------------------------------
def test_register_config_encoding():
    regs = UmpuRegisters()
    value = regs.encode_config(block_size_log2=3, multi_domain=True,
                               ndomains=8, enabled=True)
    assert value == 0x78 | 0x80 | 0x03
    assert regs.block_size == 8
    assert regs.multi_domain
    assert regs.bits_per_entry == 4
    assert regs.ndomains == 8
    assert regs.enabled


def test_register_two_domain_config():
    regs = UmpuRegisters()
    regs.encode_config(4, False, 2, enabled=False)
    assert regs.block_size == 16
    assert regs.bits_per_entry == 2
    assert regs.ndomains == 2
    assert not regs.enabled


def test_register_io_byte_access():
    mem = Memory()
    regs = UmpuRegisters().attach(mem)
    regs.mem_map_base = 0x1234
    lo = regs.io_read(IoReg.MEM_MAP_BASE_L + 0x20)
    hi = regs.io_read(IoReg.MEM_MAP_BASE_H + 0x20)
    assert (hi << 8) | lo == 0x1234
    # trusted may write
    regs.io_write(IoReg.MEM_PROT_BOT_L + 0x20, 0x44)
    regs.io_write(IoReg.MEM_PROT_BOT_H + 0x20, 0x02)
    assert regs.mem_prot_bot == 0x0244


def test_register_writes_trusted_only():
    mem = Memory()
    regs = UmpuRegisters().attach(mem)
    regs.cur_domain = 2
    with pytest.raises(ConfigFault):
        regs.io_write(IoReg.MEM_MAP_BASE_L + 0x20, 1)
    # reads are always allowed (the library reads the status register)
    assert regs.io_read(IoReg.CUR_DOMAIN + 0x20) == 2


def test_register_dump_covers_table2():
    names = {name for name, _ in UmpuRegisters.REGISTER_TABLE}
    assert {"mem_map_base", "mem_prot_bot", "mem_prot_top",
            "mem_map_config"} <= names  # paper Table 2 rows
    dump = UmpuRegisters().dump()
    assert set(dump) == names


# ---------------------------------------------------------------------
# MMC
# ---------------------------------------------------------------------
def make_mmc(cur_domain=0, stack_bound=0xF00):
    mem = Memory()
    regs = UmpuRegisters().attach(mem)
    regs.mem_map_base = 0x100
    regs.mem_prot_bot = 0x200
    regs.mem_prot_top = 0xCFF
    regs.stack_bound = stack_bound
    regs.cur_domain = cur_domain
    regs.encode_config(3, True, 8)
    mmc = MemMapController(regs, mem)
    memmap = MemoryMap(MemMapConfig(0x200, 0xCFF, 8, "multi"),
                       MemoryBackedStorage(mem, 0x100))
    bus = DataBus(mem)
    bus.add_interposer(mmc)
    return mmc, memmap, bus, mem, regs


def test_mmc_translation_matches_config():
    mmc, memmap, _bus, _mem, _regs = make_mmc()
    for addr in (0x200, 0x207, 0x208, 0x3FF, 0xCFF):
        tr = memmap.config.translate(addr)
        table_addr, shift = mmc.translate(addr)
        assert table_addr == 0x100 + tr.byte_index
        assert shift == tr.shift


def test_mmc_allows_owned_store_with_one_stall():
    mmc, memmap, bus, mem, _ = make_mmc(cur_domain=3)
    memmap.set_segment(0x300, 8, 3)
    extra = bus.write(0x300, 0x42, AccessKind.DATA_STORE)
    assert extra == MMC_STALL_CYCLES
    assert mem.read_data(0x300) == 0x42
    assert mmc.checked_stores == 1


def test_mmc_blocks_foreign_store():
    mmc, memmap, bus, mem, _ = make_mmc(cur_domain=3)
    memmap.set_segment(0x300, 8, 1)
    with pytest.raises(MemMapFault):
        bus.write(0x300, 0x42, AccessKind.DATA_STORE)
    assert mem.read_data(0x300) == 0
    assert mmc.faults == 1


def test_mmc_stack_bound():
    _mmc, _mm, bus, _mem, _ = make_mmc(cur_domain=0, stack_bound=0xE00)
    bus.write(0xE00, 1, AccessKind.DATA_STORE)   # at the bound: ok
    with pytest.raises(StackBoundFault):
        bus.write(0xE01, 1, AccessKind.DATA_STORE)


def test_mmc_checks_pushes_too():
    _mmc, _mm, bus, _mem, _ = make_mmc(cur_domain=0, stack_bound=0xE00)
    with pytest.raises(StackBoundFault):
        bus.write(0xF00, 1, AccessKind.STACK_PUSH)


def test_mmc_outside_region_faults():
    _mmc, _mm, bus, _mem, _ = make_mmc(cur_domain=0)
    with pytest.raises(UntrustedAccessFault):
        bus.write(0x100, 1, AccessKind.DATA_STORE)


def test_mmc_trusted_bypass_no_stall():
    mmc, _mm, bus, mem, _ = make_mmc(cur_domain=TRUSTED_DOMAIN)
    assert bus.write(0x300, 1, AccessKind.DATA_STORE) == 0
    assert mem.read_data(0x300) == 1
    assert mmc.checked_stores == 0


def test_mmc_disabled_bypass():
    mmc, _mm, bus, _mem, regs = make_mmc(cur_domain=0)
    regs.mem_map_config &= 0x7F
    assert bus.write(0x100, 1, AccessKind.DATA_STORE) == 0


def test_mmc_ignores_loads():
    _mmc, _mm, bus, _mem, _ = make_mmc(cur_domain=0)
    value, extra = bus.read(0x300, AccessKind.DATA_LOAD)
    assert extra == 0


def test_mmc_waveform_phases():
    mmc, memmap, bus, _mem, _ = make_mmc(cur_domain=2)
    memmap.set_segment(0x400, 8, 2)
    wave = mmc.record_waveform()
    bus.write(0x400, 9, AccessKind.DATA_STORE)
    phases = [w["phase"] for w in wave]
    assert phases == ["intercept", "translate", "write_enable"]


@settings(max_examples=300, deadline=None)
@given(addr=st.integers(0, 0xFFF), domain=st.integers(0, 7),
       owner=st.integers(0, 7), bound=st.integers(0xD00, 0xFFF))
def test_property_mmc_agrees_with_golden_checker(addr, domain, owner,
                                                 bound):
    """Differential test: hardware MMC vs repro.core golden model."""
    mmc, memmap, bus, _mem, regs = make_mmc(cur_domain=domain,
                                            stack_bound=bound)
    memmap.set_segment(0x300, 64, owner)
    golden = WriteChecker(CheckContext(memmap, cur_domain=domain,
                                       stack_bound=bound))
    try:
        golden.check(addr)
        golden_outcome = None
    except ProtectionFault as exc:
        golden_outcome = type(exc)
    try:
        bus.write(addr, 0x42, AccessKind.DATA_STORE)
        hw_outcome = None
    except ProtectionFault as exc:
        hw_outcome = type(exc)
    assert hw_outcome == golden_outcome


# ---------------------------------------------------------------------
# safe-stack unit
# ---------------------------------------------------------------------
def make_ss_unit():
    mem = Memory()
    regs = UmpuRegisters().attach(mem)
    regs.encode_config(3, True, 8)
    regs.safe_stack_ptr = 0xC00
    unit = SafeStackUnit(regs, mem)
    unit.floor = 0xC00
    bus = DataBus(mem)
    bus.add_interposer(unit)
    mem.sp = 0xFFF
    return unit, bus, mem, regs


def test_ret_push_redirected():
    unit, bus, mem, regs = make_ss_unit()
    extra = bus.write(0xFFF, 0x34, AccessKind.RET_PUSH)
    assert extra == 0
    assert mem.read_data(0xC00) == 0x34      # went to the safe stack
    assert mem.read_data(0xFFF) == 0         # not to the run-time stack
    assert regs.safe_stack_ptr == 0xC01
    assert unit.redirected_pushes == 1


def test_ret_pop_redirected():
    unit, bus, mem, regs = make_ss_unit()
    bus.write(0xFFF, 0x34, AccessKind.RET_PUSH)
    bus.write(0xFFE, 0x12, AccessKind.RET_PUSH)
    value, extra = bus.read(0xFFE, AccessKind.RET_POP)
    assert (value, extra) == (0x12, 0)
    value, _ = bus.read(0xFFF, AccessKind.RET_POP)
    assert value == 0x34
    assert regs.safe_stack_ptr == 0xC00


def test_ordinary_traffic_untouched():
    _unit, bus, mem, _regs = make_ss_unit()
    bus.write(0x800, 0x77, AccessKind.DATA_STORE)
    assert mem.read_data(0x800) == 0x77
    value, _ = bus.read(0x800, AccessKind.DATA_LOAD)
    assert value == 0x77


def test_safe_stack_overflow_against_sp():
    unit, bus, mem, regs = make_ss_unit()
    mem.sp = 0xC02  # run-time stack grew down to meet the safe stack
    bus.write(0, 1, AccessKind.RET_PUSH)
    bus.write(0, 2, AccessKind.RET_PUSH)
    with pytest.raises(SafeStackOverflow):
        bus.write(0, 3, AccessKind.RET_PUSH)


def test_disabled_unit_passes_through():
    unit, bus, mem, regs = make_ss_unit()
    regs.mem_map_config &= 0x7F
    bus.write(0xFFF, 0x34, AccessKind.RET_PUSH)
    assert mem.read_data(0xFFF) == 0x34


# ---------------------------------------------------------------------
# domain tracker
# ---------------------------------------------------------------------
class FakeCore:
    def __init__(self, sp=0xF80):
        self.sp = sp


def make_tracker():
    mem = Memory()
    regs = UmpuRegisters().attach(mem)
    regs.encode_config(3, True, 8)
    regs.jt_base = 0x1000
    regs.safe_stack_ptr = 0xC00
    regs.stack_bound = 0xFFF
    unit = SafeStackUnit(regs, mem)
    unit.floor = 0xC00
    mem.sp = 0xFFF
    tracker = DomainTracker(regs, unit)
    return tracker, regs, mem


def test_tracker_cross_domain_call_sequence():
    tracker, regs, _mem = make_tracker()
    core = FakeCore(sp=0xF80)
    # call into domain 2's jump table page (word address)
    extra = tracker.on_event(core, "call",
                             target=(0x1000 + 2 * 512) // 2, ret=0x40)
    assert extra == 5
    assert regs.cur_domain == 2
    assert regs.stack_bound == 0xF80
    assert tracker.nesting == 1
    # the 3 tracker bytes are on the safe stack (ret addr follows from
    # the core's redirected push, not simulated here)
    assert regs.safe_stack_ptr == 0xC03


def test_tracker_return_restores():
    tracker, regs, _mem = make_tracker()
    core = FakeCore()
    tracker.on_event(core, "call", target=0x1000 // 2, ret=0)
    extra = tracker.on_event(core, "ret", target=0)
    assert extra == 5
    assert regs.cur_domain == TRUSTED_DOMAIN
    assert regs.stack_bound == 0xFFF
    assert tracker.nesting == 0


def test_tracker_local_calls_counted():
    tracker, regs, _mem = make_tracker()
    core = FakeCore()
    tracker.register_code_region(0, 0x4000, 0x5000)
    tracker.on_event(core, "call", target=0x1000 // 2, ret=0)
    tracker.on_event(core, "call", target=0x4100 // 2, ret=0)
    assert tracker.on_event(core, "ret", target=0) == 0   # local return
    assert regs.cur_domain == 0
    assert tracker.on_event(core, "ret", target=0) == 5   # closes frame
    assert regs.cur_domain == TRUSTED_DOMAIN


def test_tracker_confines_untrusted_calls():
    tracker, regs, _mem = make_tracker()
    core = FakeCore()
    tracker.register_code_region(0, 0x4000, 0x5000)
    tracker.on_event(core, "call", target=0x1000 // 2, ret=0)  # -> dom 0
    with pytest.raises(JumpTableFault):
        tracker.on_event(core, "call", target=0x8000 // 2, ret=0)
    with pytest.raises(JumpTableFault):
        tracker.on_event(core, "ijmp", target=0x8000 // 2)
    # within its own region both are fine
    tracker.on_event(core, "ijmp", target=0x4800 // 2)


def test_tracker_rejects_beyond_table():
    """With fewer configured domains the table shrinks: a call past its
    upper bound is no longer a jump-table transfer, so an untrusted
    caller is confined to its code region instead."""
    tracker, regs, _mem = make_tracker()
    regs.encode_config(3, True, 2)  # only 2 domains have tables
    regs.cur_domain = 0
    tracker.register_code_region(0, 0x4000, 0x5000)
    core = FakeCore()
    with pytest.raises(JumpTableFault):
        tracker.on_event(core, "call",
                         target=(0x1000 + 5 * 512) // 2, ret=0)


def test_tracker_rejects_misaligned_jt_entry():
    tracker, regs, _mem = make_tracker()
    core = FakeCore()
    with pytest.raises(JumpTableFault):
        tracker.on_event(core, "call", target=(0x1000 + 2) // 2, ret=0)


def test_tracker_disabled():
    tracker, regs, _mem = make_tracker()
    regs.mem_map_config &= 0x7F
    core = FakeCore()
    assert tracker.on_event(core, "call", target=0x1000 // 2, ret=0) == 0
    assert regs.cur_domain == TRUSTED_DOMAIN
