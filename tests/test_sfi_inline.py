"""Inline-checks rewriter + template verifier (the verifier design
space the paper leaves as future work)."""

import pytest

from repro.asm import assemble, disassemble
from repro.core.faults import MemMapFault
from repro.sfi.inline import InlineRewriter, TemplateVerifier, build_core
from repro.sfi.layout import FAULT_NAMES, SfiLayout
from repro.sfi.rewriter import Rewriter
from repro.sfi.runtime_asm import build_runtime
from repro.sfi.verifier import Verifier, VerifyError
from repro.sim import Machine

LAYOUT = SfiLayout()
RUNTIME = build_runtime(LAYOUT)
ORIGIN = LAYOUT.jt_end


@pytest.fixture(scope="module")
def inline_rw():
    return InlineRewriter(RUNTIME.symbols, LAYOUT)


@pytest.fixture(scope="module")
def template_verifier():
    return TemplateVerifier(RUNTIME.symbols, LAYOUT)


def load_and_run(result, setup=None, target=None, value=0x42,
                 domain=0):
    machine = Machine(RUNTIME)
    for w, v in result.program.words.items():
        machine.memory.write_flash_word(w, v)
    machine.core.invalidate_decode_cache()
    machine.call("hb_init", max_cycles=100000)
    if setup:
        setup(machine)
    machine.memory.write_data(LAYOUT.cur_dom, domain)
    cycles = machine.call(result.exports["f"], target, ("u8", value),
                          max_cycles=200000)
    fault = machine.memory.read_data(LAYOUT.fault_code)
    return machine, cycles, FAULT_NAMES.get(fault, None)


def mark_owned(machine, addr, nbytes, owner):
    machine.core.set_reg_pair(26, addr)
    machine.core.set_reg_pair(20, nbytes)
    machine.core.set_reg(18, (owner << 1) | 1)
    machine.core.set_reg(19, owner << 1)
    machine.call("hb_mmap_mark")


# ---------------------------------------------------------------------
# the template itself
# ---------------------------------------------------------------------
def test_core_builds_and_is_deterministic():
    items1, words1 = build_core(RUNTIME.symbols, LAYOUT)
    items2, words2 = build_core(RUNTIME.symbols, LAYOUT)
    assert words1 == words2
    assert len(items1) > 30


def test_template_matches_runtime_checker_semantics():
    """The inline template and hb_check_x implement the same rule: run
    both on the same scenarios and compare verdicts."""
    src = "f:\n    movw r26, r24\n    mov r18, r22\n    st X, r18\n    ret\n"
    program = assemble(src, "m")
    inline = InlineRewriter(RUNTIME.symbols, LAYOUT).rewrite(
        program, ORIGIN, exports=("f",))
    called = Rewriter(RUNTIME.symbols, LAYOUT).rewrite(
        program, ORIGIN, exports=("f",))
    for addr, owner, domain in [
            (0x0300, 0, 0),    # own block
            (0x0300, 1, 0),    # foreign block
            (0x0100, 0, 0),    # below the region
            (0x0E00, 0, 0),    # stack window
            (0x0300, 1, 7),    # trusted bypass
    ]:
        verdicts = []
        for result in (inline, called):
            def setup(machine, _owner=owner):
                mark_owned(machine, 0x0300, 64, _owner)
            _m, _c, fault = load_and_run(result, setup, addr,
                                         domain=domain)
            verdicts.append(fault)
        assert verdicts[0] == verdicts[1], (hex(addr), owner, domain)


# ---------------------------------------------------------------------
# every store mode works inlined
# ---------------------------------------------------------------------
@pytest.mark.parametrize("body,probe_off,ptr_setup", [
    ("st X, r18", 0, "    movw r26, r24\n"),
    ("st X+, r18", 0, "    movw r26, r24\n"),
    ("st -X, r18", -1, "    movw r26, r24\n"),
    ("st Y+, r18", 0, "    movw r28, r24\n"),
    ("st -Y, r18", -1, "    movw r28, r24\n"),
    ("std Y+5, r18", 5, "    movw r28, r24\n"),
    ("st Z+, r18", 0, "    movw r30, r24\n"),
    ("std Z+9, r18", 9, "    movw r30, r24\n"),
])
def test_inline_modes_store_correctly(inline_rw, body, probe_off,
                                      ptr_setup):
    src = ("f:\n    mov r18, r22\n" + ptr_setup
           + "    " + body + "\n    ret\n")
    result = inline_rw.rewrite(assemble(src, "m"), ORIGIN, exports=("f",))
    base = 0x0400

    def setup(machine):
        mark_owned(machine, 0x03F8, 64, 0)

    machine, _cycles, fault = load_and_run(result, setup, base,
                                           value=0x5C)
    assert fault is None
    assert machine.memory.read_data(base + probe_off) == 0x5C


def test_inline_preserves_pointer_side_effects(inline_rw):
    src = ("f:\n    mov r18, r22\n    movw r28, r24\n"
           "    st Y+, r18\n    st Y+, r18\n    movw r24, r28\n    ret\n")
    result = inline_rw.rewrite(assemble(src, "m"), ORIGIN, exports=("f",))

    def setup(machine):
        mark_owned(machine, 0x0400, 64, 0)

    machine, _c, fault = load_and_run(result, setup, 0x0400)
    assert fault is None
    assert machine.result16() == 0x0402  # Y advanced twice


def test_inline_sts(inline_rw):
    src = "f:\n    mov r18, r22\n    sts 0x0408, r18\n    ret\n"
    result = inline_rw.rewrite(assemble(src, "m"), ORIGIN, exports=("f",))

    def setup(machine):
        mark_owned(machine, 0x0408, 8, 0)

    machine, _c, fault = load_and_run(result, setup, 0)
    assert fault is None
    assert machine.memory.read_data(0x0408) == 0x42


# ---------------------------------------------------------------------
# verifier design-space behaviour
# ---------------------------------------------------------------------
def test_template_verifier_accepts_inline_output(inline_rw,
                                                 template_verifier):
    src = "f:\n    movw r26, r24\n    mov r18, r22\n    st X, r18\n    ret\n"
    result = inline_rw.rewrite(assemble(src, "m"), ORIGIN, exports=("f",))
    report = template_verifier.verify(result.program, result.start,
                                      result.end)
    assert template_verifier._guards == 1
    assert report.instructions > 40


def test_constant_state_verifier_rejects_inline_output(inline_rw):
    """The two (rewriter, verifier) pairs are NOT interchangeable: each
    verifier admits exactly its own rewriter's discipline."""
    src = "f:\n    movw r26, r24\n    mov r18, r22\n    st X, r18\n    ret\n"
    result = inline_rw.rewrite(assemble(src, "m"), ORIGIN, exports=("f",))
    plain = Verifier(RUNTIME.symbols, LAYOUT)
    with pytest.raises(VerifyError):
        plain.verify(result.program, result.start, result.end)


def test_template_verifier_accepts_call_mode_output(template_verifier):
    rewriter = Rewriter(RUNTIME.symbols, LAYOUT)
    src = "f:\n    movw r26, r24\n    mov r18, r22\n    st X, r18\n    ret\n"
    result = rewriter.rewrite(assemble(src, "m"), ORIGIN, exports=("f",))
    template_verifier.verify(result.program, result.start, result.end)


def test_template_verifier_rejects_bare_store(template_verifier):
    program = assemble(
        ".org {}\nf:\n    st X, r18\n    nop\n".format(ORIGIN), "m")
    lo, hi = program.extent()
    with pytest.raises(VerifyError) as err:
        template_verifier.verify(program, lo * 2, (hi + 1) * 2)
    assert "without the inline check template" in str(err.value)


def test_template_verifier_rejects_wrong_value_register(template_verifier,
                                                        inline_rw):
    """Template followed by `st X, r5` (not r18): the checked value
    convention is violated — reject."""
    src = "f:\n    movw r26, r24\n    mov r18, r22\n    st X, r18\n    ret\n"
    result = inline_rw.rewrite(assemble(src, "m"), ORIGIN, exports=("f",))
    # find the store and swap its register operand to r5
    from repro.isa.encoding import encode
    for line in disassemble(result.program):
        if line.instr is not None and line.instr.key == "st_x":
            result.program.set_word(line.byte_addr // 2,
                                    encode("st_x", (5,))[0])
    with pytest.raises(VerifyError):
        template_verifier.verify(result.program, result.start,
                                 result.end)


def test_template_verifier_rejects_branch_over_check(template_verifier,
                                                     inline_rw):
    """A crafted branch that jumps straight to the store (skipping the
    check) must be rejected — the protected-range rule."""
    src = "f:\n    movw r26, r24\n    mov r18, r22\n    st X, r18\n    ret\n"
    result = inline_rw.rewrite(assemble(src, "m"), ORIGIN, exports=("f",))
    store_addr = next(l.byte_addr for l in disassemble(result.program)
                      if l.instr is not None and l.instr.key == "st_x")
    # append a function that branches directly at the store
    from repro.isa.encoding import encode
    tail = result.end
    words = encode("rjmp", ((store_addr - (tail + 2)) // 2,))
    result.program.set_word(tail // 2, words[0])
    result.program.set_word(tail // 2 + 1, encode("nop", ())[0])
    with pytest.raises(VerifyError):
        template_verifier.verify(result.program, result.start,
                                 result.end + 4)
    # fail-fast trips on the push-depth mismatch first (the template's
    # store sits inside its push region); collect mode must still show
    # the protected-range rule itself
    engine = template_verifier.verify_all(result.program, result.start,
                                          result.end + 4)
    assert any("inline check" in d.message for d in engine.findings)
    assert "HL016" in engine.codes()


# ---------------------------------------------------------------------
# the trade-off the two designs make (paper: checks not inlined to
# minimize module code size)
# ---------------------------------------------------------------------
def test_inline_is_faster_but_larger(inline_rw):
    src = "f:\n    movw r26, r24\n    mov r18, r22\n    st X, r18\n    ret\n"
    program = assemble(src, "m")
    called = Rewriter(RUNTIME.symbols, LAYOUT).rewrite(
        program, ORIGIN, exports=("f",))
    inline = inline_rw.rewrite(program, ORIGIN, exports=("f",))

    def setup(machine):
        mark_owned(machine, 0x0300, 64, 0)

    _m1, called_cycles, _ = load_and_run(called, setup, 0x0300)
    _m2, inline_cycles, _ = load_and_run(inline, setup, 0x0300)
    assert inline_cycles < called_cycles           # saves the dispatch
    assert inline.size_bytes > 2 * called.size_bytes  # at a size cost


def test_template_verifier_rejects_skip_landing(template_verifier,
                                                inline_rw):
    """A skip instruction placed so its landing point falls between the
    template and the store would bypass the check conditionally."""
    from repro.isa.encoding import encode
    src = "f:\n    movw r26, r24\n    mov r18, r22\n    st X, r18\n    ret\n"
    result = inline_rw.rewrite(assemble(src, "m"), ORIGIN, exports=("f",))
    store_addr = next(l.byte_addr for l in disassemble(result.program)
                      if l.instr is not None and l.instr.key == "st_x")
    # craft: at store-4, sbrc r0,0 would skip the final template word
    # and land exactly on the store.  Overwrite the word at store-4.
    result.program.set_word(store_addr // 2 - 2,
                            encode("sbrc", (0, 0))[0])
    with pytest.raises(VerifyError):
        template_verifier.verify(result.program, result.start,
                                 result.end)


def test_cli_inline_pipeline(tmp_path, capsys):
    from repro.cli import cmd_rewrite, cmd_verify
    src = tmp_path / "m.s"
    src.write_text("f:\n    st X, r18\n    ret\n")
    out = tmp_path / "m.hex"
    assert cmd_rewrite([str(src), "--export", "f", "--inline",
                        "-o", str(out)]) == 0
    capsys.readouterr()
    # the inline binary needs the template verifier...
    assert cmd_verify([str(out), "--inline"]) == 0
    assert "ACCEPTED" in capsys.readouterr().out
    # ...and is rejected by the constant-state verifier
    assert cmd_verify([str(out)]) == 1
