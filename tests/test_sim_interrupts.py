"""Interrupt controller: vectoring, priorities, reti, and the
protection interaction (handlers run in the trusted domain)."""

import pytest

from repro.asm import assemble
from repro.core.encoding import TRUSTED_DOMAIN
from repro.isa.registers import SREG_BITS
from repro.sim import InterruptController, Machine
from repro.umpu import HarborLayout, UmpuMachine

#: vectors at word 0 (stride 2): vector n jumps to its handler
PROGRAM = """
    jmp main                ; vector 0 doubles as reset (jmp = 2 words)
    jmp handler1            ; vector 1 at word 2
    jmp handler2            ; vector 2 at word 4

main:
    sei
spin:
    inc r20
    cpi r20, 50
    brne spin
    break

handler1:
    inc r16
    reti

handler2:
    inc r17
    reti
"""


def machine_with_irq():
    m = Machine(assemble(PROGRAM, "irq"))
    InterruptController(m.core, nvectors=8, vector_stride_words=2)
    return m


def test_interrupt_taken_and_returns():
    m = machine_with_irq()
    m.core.pc = m.program.symbol("main") // 2
    m.core.step()  # sei
    m.core.interrupts.raise_irq(1)
    m.core.run(max_cycles=1000)
    assert m.core.reg(16) == 1      # handler ran
    assert m.core.reg(20) == 50     # main loop completed
    assert m.core.interrupts.taken == 1
    assert m.memory.sp == m.geometry.ramend  # balanced


def test_interrupt_needs_global_flag():
    m = machine_with_irq()
    m.core.interrupts.raise_irq(1)
    # run only the pre-sei part: no interrupt before I is set
    m.core.pc = m.program.symbol("main") // 2
    # I is clear: poll does nothing
    assert m.core.interrupts.poll() == 0
    m.core.step()  # sei
    assert m.core.interrupts.poll() > 0


def test_priority_lowest_line_first():
    m = machine_with_irq()
    m.core.pc = m.program.symbol("main") // 2
    m.core.step()  # sei
    m.core.interrupts.raise_irq(2)
    m.core.interrupts.raise_irq(1)
    m.core.step()  # takes line 1 first
    m.core.run(max_cycles=1000)
    assert m.core.reg(16) == 1 and m.core.reg(17) == 1
    assert m.core.interrupts.taken == 2


def test_i_flag_cleared_in_handler_restored_by_reti():
    m = machine_with_irq()
    m.core.pc = m.program.symbol("main") // 2
    m.core.step()  # sei
    m.core.interrupts.raise_irq(1)
    m.core.step()  # irq taken + jmp in vector executes
    assert m.core.flag(SREG_BITS.I) == 0
    m.core.run(max_cycles=1000)
    assert m.core.flag(SREG_BITS.I) == 1


def test_irq_response_cycles():
    m = machine_with_irq()
    m.core.pc = m.program.symbol("main") // 2
    m.core.step()
    m.core.interrupts.raise_irq(1)
    cycles = m.core.step()  # irq (4) + vector jmp (3)
    assert cycles == 4 + 3


def test_bad_line_rejected():
    m = machine_with_irq()
    with pytest.raises(ValueError):
        m.core.interrupts.raise_irq(99)


# ---------------------------------------------------------------------
# protection interaction
# ---------------------------------------------------------------------
UMPU_PROGRAM = """
    jmp 0x0400              ; vector 0 unused (reset)
    jmp handler             ; vector 1 at word 2: kernel handler

handler:
    ldi r26, 0x00
    ldi r27, 0x01
    ldi r16, 0xAB
    st X, r16               ; store into TRUSTED memory
    reti

.org 0x2000
module_loop:                ; untrusted module code
    sei
    inc r20
    cpi r20, 10
    brne module_loop
    ret
"""


def test_interrupt_handler_runs_trusted_under_umpu():
    layout = HarborLayout()
    m = UmpuMachine(assemble(UMPU_PROGRAM, "umpu_irq"), layout=layout)
    InterruptController(m.core, nvectors=8, vector_stride_words=2)
    m.tracker.register_code_region(0, 0x2000, 0x2100)
    m.enter_domain(0)
    m.core.interrupts.raise_irq(1)
    m.call("module_loop", max_cycles=10000)
    # the handler's store to trusted memory (0x0100) succeeded even
    # though domain 0 was interrupted: the tracker swapped to trusted
    assert m.memory.read_data(0x0100) == 0xAB
    # and the module's domain was restored by reti
    assert m.regs.cur_domain == 0 or m.regs.cur_domain == TRUSTED_DOMAIN
    assert m.core.interrupts.taken == 1
    assert m.core.reg(20) == 10


def test_interrupt_domain_restored_exactly():
    layout = HarborLayout()
    m = UmpuMachine(assemble(UMPU_PROGRAM, "umpu_irq2"), layout=layout)
    InterruptController(m.core, nvectors=8, vector_stride_words=2)
    m.tracker.register_code_region(0, 0x2000, 0x2100)
    m.enter_domain(0)
    m.core.pc = 0x2000 // 2
    m.core.step()   # sei
    m.core.interrupts.raise_irq(1)
    m.core.step()   # irq entry + vector jmp
    assert m.regs.cur_domain == TRUSTED_DOMAIN
    # run the handler through its reti
    for _ in range(6):
        m.core.step()
    assert m.regs.cur_domain == 0   # back in the module's domain
    assert m.regs.safe_stack_ptr == layout.safe_stack_base  # balanced


# ---------------------------------------------------------------------
# coalescing: raising an already-pending line is a single-bit flag
# ---------------------------------------------------------------------
def test_coalesced_raises_counted_per_line():
    m = machine_with_irq()
    ic = m.core.interrupts
    for _ in range(3):
        ic.raise_irq(1)
    ic.raise_irq(2)
    assert ic.raised == 4
    assert ic.pending == {1, 2}
    assert ic.coalesced == {1: 2}
    assert ic.coalesced_total == 2
    m.run()
    assert m.core.reg(16) == 1       # handler ran once, not three times
    assert m.core.reg(17) == 1
    assert ic.taken == 2


def test_coalesced_raise_emits_trace_event():
    from repro.trace import TraceEventKind
    m = machine_with_irq()
    sink = m.attach_trace()
    ic = m.core.interrupts
    ic.raise_irq(1)
    ic.raise_irq(1)
    events = sink.of(TraceEventKind.IRQ_COALESCED)
    assert len(events) == 1
    assert events[0].get("line") == 1
    assert events[0].get("coalesced") == 1


def test_timer_fired_vs_taken_divergence_is_visible():
    # a timer outpacing the CPU: fired counts raises, taken counts
    # handler entries; the gap shows up in the coalescing counter
    from repro.sim.devices import PeriodicTimer
    m = machine_with_irq()
    ic = m.core.interrupts
    timer = PeriodicTimer(ic, line=1, period=10)
    timer.tick(35)                   # 3 fires while I-flag is clear
    assert timer.fired == 3
    assert ic.pending == {1}
    assert ic.coalesced_total == 2   # only the first raise stuck
    m.run()
    assert ic.taken == timer.fired - ic.coalesced_total
