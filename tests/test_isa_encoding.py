"""Encode/decode tests for the AVR subset.

Specific encodings are checked against the values the AVR datasheet
gives (spot checks across every format family), and a hypothesis
round-trip property covers the whole operand space of every spec.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.encoding import (
    DecodeError,
    EncodeError,
    decode_words,
    encode,
    is_32bit_opcode,
)
from repro.isa.opcodes import SPECS, SPEC_BY_KEY, OperandKind


# ---------------------------------------------------------------------
# known encodings (hand-computed from the datasheet patterns)
# ---------------------------------------------------------------------
KNOWN = [
    ("nop", (), (0x0000,)),
    ("ret", (), (0x9508,)),
    ("reti", (), (0x9518,)),
    ("ijmp", (), (0x9409,)),
    ("icall", (), (0x9509,)),
    ("add", (0, 0), (0x0C00,)),
    ("add", (1, 2), (0x0C12,)),
    ("add", (31, 31), (0x0FFF,)),
    ("adc", (17, 16), (0x1F10,)),
    ("sub", (5, 10), (0x185A,)),
    ("eor", (3, 3), (0x2433,)),          # aka clr r3
    ("mov", (0, 31), (0x2E0F,)),
    ("movw", (30, 26), (0x01FD,)),
    ("ldi", (16, 0xFF), (0xEF0F,)),      # aka ser r16
    ("ldi", (31, 0x42), (0xE4F2,)),
    ("cpi", (16, 0x10), (0x3100,)),
    ("subi", (20, 1), (0x5041,)),
    ("andi", (16, 0x0F), (0x700F,)),
    ("com", (7, ), (0x9470,)),
    ("neg", (0, ), (0x9401,)),
    ("inc", (22, ), (0x9563,)),
    ("dec", (22, ), (0x956A,)),
    ("lsr", (9, ), (0x9496,)),
    ("adiw", (26, 1), (0x9611,)),
    ("adiw", (30, 63), (0x96FF,)),
    ("sbiw", (24, 8), (0x9708,)),
    ("rjmp", (0, ), (0xC000,)),
    ("rjmp", (-1, ), (0xCFFF,)),
    ("rcall", (2, ), (0xD002,)),
    ("jmp", (0x123, ), (0x940C, 0x0123)),
    ("call", (0x456, ), (0x940E, 0x0456)),
    ("brbs", (1, -2), (0xF3F1,)),        # breq .-2
    ("brbc", (1, 5), (0xF429,)),         # brne .+5 words
    ("lds", (4, 0x0100), (0x9040, 0x0100)),
    ("sts", (0x0200, 5), (0x9250, 0x0200)),
    ("ld_x", (6, ), (0x906C,)),
    ("ld_xp", (6, ), (0x906D,)),
    ("ld_mx", (6, ), (0x906E,)),
    ("st_x", (7, ), (0x927C,)),
    ("st_xp", (7, ), (0x927D,)),
    ("ldd_y", (2, 1), (0x8029,)),
    ("ldd_z", (2, 0), (0x8020,)),
    ("std_y", (1, 3), (0x8239,)),        # std Y+1, r3
    ("std_z", (63, 0), (0xAE07,)),       # std Z+63, r0
    ("push", (31, ), (0x93FF,)),
    ("pop", (0, ), (0x900F,)),
    ("in", (0, 0x3F), (0xB60F,)),
    ("out", (0x3F, 0), (0xBE0F,)),
    ("sbi", (5, 7), (0x9A2F,)),
    ("cbi", (0, 0), (0x9800,)),
    ("sbic", (1, 2), (0x990A,)),
    ("lpm_r0", (), (0x95C8,)),
    ("lpm", (3, ), (0x9034,)),
    ("lpm_zp", (3, ), (0x9035,)),
    ("bset", (7, ), (0x9478,)),          # sei
    ("bclr", (7, ), (0x94F8,)),          # cli
    ("bst", (10, 3), (0xFAA3,)),
    ("bld", (10, 3), (0xF8A3,)),
    ("sbrc", (2, 7), (0xFC27,)),
    ("sbrs", (2, 0), (0xFE20,)),
    ("cpse", (4, 5), (0x1045,)),
    ("mul", (2, 3), (0x9C23,)),
    ("sleep", (), (0x9588,)),
    ("wdr", (), (0x95A8,)),
    ("break", (), (0x9598,)),
    ("swap", (18, ), (0x9522,)),
    ("asr", (18, ), (0x9525,)),
    ("ror", (18, ), (0x9527,)),
]


@pytest.mark.parametrize("key,operands,words", KNOWN,
                         ids=[f"{k}-{i}" for i, (k, _o, _w)
                              in enumerate(KNOWN)])
def test_known_encoding(key, operands, words):
    assert encode(key, operands) == words


@pytest.mark.parametrize("key,operands,words", KNOWN,
                         ids=[f"{k}-{i}" for i, (k, _o, _w)
                              in enumerate(KNOWN)])
def test_known_decoding(key, operands, words):
    instr = decode_words(*words)
    assert instr.key == key
    assert instr.operands == tuple(operands)


# ---------------------------------------------------------------------
# error handling
# ---------------------------------------------------------------------
def test_encode_wrong_arity():
    with pytest.raises(EncodeError):
        encode("add", (1,))


def test_encode_reg_out_of_range():
    with pytest.raises(EncodeError):
        encode("add", (32, 0))


def test_encode_reg_hi_low_register():
    with pytest.raises(EncodeError):
        encode("ldi", (3, 1))


def test_encode_adiw_odd_pair():
    with pytest.raises(EncodeError):
        encode("adiw", (25, 1))


def test_encode_adiw_low_pair():
    with pytest.raises(EncodeError):
        encode("adiw", (20, 1))


def test_encode_movw_odd():
    with pytest.raises(EncodeError):
        encode("movw", (1, 2))


def test_encode_branch_out_of_range():
    with pytest.raises(EncodeError):
        encode("brbs", (0, 64))
    with pytest.raises(EncodeError):
        encode("brbs", (0, -65))


def test_encode_rjmp_out_of_range():
    with pytest.raises(EncodeError):
        encode("rjmp", (2048,))


def test_encode_displacement_range():
    with pytest.raises(EncodeError):
        encode("ldd_y", (0, 64))


def test_decode_garbage():
    with pytest.raises(DecodeError):
        decode_words(0xFFFF)  # erased flash is not an instruction


def test_decode_truncated_32bit():
    with pytest.raises(DecodeError):
        decode_words(0x940E, None)


def test_is_32bit_opcode():
    assert is_32bit_opcode(0x940E)      # call
    assert is_32bit_opcode(0x940C)      # jmp
    assert is_32bit_opcode(0x9040)      # lds
    assert is_32bit_opcode(0x9250)      # sts
    assert not is_32bit_opcode(0x0000)  # nop
    assert not is_32bit_opcode(0x9508)  # ret


# ---------------------------------------------------------------------
# whole-ISA round trip (property)
# ---------------------------------------------------------------------
def _operand_strategy(kind):
    if kind is OperandKind.REG:
        return st.integers(0, 31)
    if kind is OperandKind.REG_HI:
        return st.integers(16, 31)
    if kind is OperandKind.REG_PAIR:
        return st.integers(0, 15).map(lambda n: n * 2)
    if kind is OperandKind.REG_PAIR_W:
        return st.sampled_from([24, 26, 28, 30])
    if kind is OperandKind.IMM8:
        return st.integers(0, 255)
    if kind in (OperandKind.IMM6, OperandKind.IO6, OperandKind.DISP6):
        return st.integers(0, 63)
    if kind is OperandKind.IO5:
        return st.integers(0, 31)
    if kind in (OperandKind.BIT, OperandKind.SREG_BIT):
        return st.integers(0, 7)
    if kind is OperandKind.REL7:
        return st.integers(-64, 63)
    if kind is OperandKind.REL12:
        return st.integers(-2048, 2047)
    if kind is OperandKind.ADDR16:
        return st.integers(0, 0xFFFF)
    if kind is OperandKind.ADDR22:
        return st.integers(0, (1 << 22) - 1)
    raise AssertionError(kind)


@st.composite
def _any_instruction(draw):
    spec = draw(st.sampled_from(SPECS))
    operands = tuple(draw(_operand_strategy(op.kind))
                     for op in spec.operands)
    return spec.key, operands


@settings(max_examples=500)
@given(_any_instruction())
def test_roundtrip_property(instr):
    """encode -> decode recovers the exact instruction, for every spec
    and every legal operand combination."""
    key, operands = instr
    words = encode(key, operands)
    assert len(words) == SPEC_BY_KEY[key].size_words
    decoded = decode_words(*words)
    assert decoded.key == key
    assert decoded.operands == operands


def test_decode_is_unambiguous_for_all_encodings():
    """No two specs may claim the same word: decode(encode(x)) must give
    back x's key, exercised at field extremes for every spec."""
    for spec in SPECS:
        extremes = []
        for op in spec.operands:
            lo, hi = {
                OperandKind.REG: (0, 31),
                OperandKind.REG_HI: (16, 31),
                OperandKind.REG_PAIR: (0, 30),
                OperandKind.REG_PAIR_W: (24, 30),
                OperandKind.IMM8: (0, 255),
                OperandKind.IMM6: (0, 63),
                OperandKind.IO6: (0, 63),
                OperandKind.IO5: (0, 31),
                OperandKind.BIT: (0, 7),
                OperandKind.SREG_BIT: (0, 7),
                OperandKind.DISP6: (0, 63),
                OperandKind.REL7: (-64, 63),
                OperandKind.REL12: (-2048, 2047),
                OperandKind.ADDR16: (0, 0xFFFF),
                OperandKind.ADDR22: (0, (1 << 22) - 1),
            }[op.kind]
            extremes.append((lo, hi))
        import itertools
        for combo in itertools.product(*extremes) if extremes else [()]:
            words = encode(spec.key, combo)
            decoded = decode_words(*words)
            assert decoded.key == spec.key, (
                "{} with {} decoded as {}".format(spec.key, combo,
                                                  decoded.key))
