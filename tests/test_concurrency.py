"""Interrupt-aware concurrency analysis: the I-bit dataflow, the
mainline x ISR race detector (HL019/HL020 with two-site witnesses),
the static ISR-WCET / interrupt-latency certificate (HL021), the
``harbor-race`` CLI, the lint baseline, and fast-path interrupt
delivery.

Acceptance-critical properties pinned here:

* the racy example module yields HL019 + HL020 (the 16-bit counter)
  with a two-site witness; the clean examples analyze race-free;
* the static latency bound dominates the runtime ``irq_entry_latency``
  maximum the metrics registry observes on an interrupt-driven
  workload;
* ``cli``/``sei``/``reti`` sequences deliver pending interrupts cycle-
  and state-identically on the fast and instrumented run loops
  (hypothesis differential).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.static.cfg import RegionCFG
from repro.analysis.static.concurrency import (
    ConcurrencyAnalysis,
    IsrInfo,
    find_isr_labels,
    publish_gauges,
    vector_table_isrs,
)
from repro.analysis.static.diagnostics import (
    DiagnosticsEngine,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.asm import assemble
from repro.asm.assembler import default_symbols
from repro.cli import cmd_race
from repro.sim import Machine
from repro.sim.devices import PeriodicTimer
from repro.sim.interrupts import InterruptController
from repro.trace.metrics import MetricsRegistry

RACY = "examples/modules/racy_sampler.s"
CLEAN = "examples/modules/clean_sensor.s"

_KERNEL_SYMBOLS = None


def kernel_symbols():
    """KERNEL_* symbols the example modules assemble against (computed
    once; building an SfiSystem is not free)."""
    global _KERNEL_SYMBOLS
    if _KERNEL_SYMBOLS is None:
        from repro.sfi.system import SfiSystem
        _KERNEL_SYMBOLS = SfiSystem().kernel_symbols()
    return _KERNEL_SYMBOLS


def analyze(src, engine=None, budget=None, isrs=None, mainline=None,
            name="t"):
    """Assemble *src* and run the concurrency analysis the way
    ``harbor-race`` does (label-convention ISR discovery)."""
    from repro.asm import Assembler
    program = Assembler(symbols=kernel_symbols()).assemble(src)
    lo, hi = program.extent()
    predefined = set(default_symbols()) | set(kernel_symbols())
    labels = {n: a for n, a in program.symbols.items()
              if n not in predefined and lo * 2 <= a <= hi * 2 + 1}
    words = dict(program.words)

    def read_word(word_addr):
        return words.get(word_addr, 0xFFFF)

    if isrs is None:
        isrs = find_isr_labels(labels)
    taken = {i.entry for i in isrs}
    if mainline is None:
        entries = set(labels.values()) - taken
    else:
        entries = {labels[m] for m in mainline}
    cfg = RegionCFG.build(read_word, lo * 2, (hi + 1) * 2, name=name,
                          extra_leaders=sorted(labels.values()))
    analysis = ConcurrencyAnalysis(cfg, mainline_entries=entries,
                                   isrs=isrs)
    return analysis.run(engine=engine, budget=budget)


# =====================================================================
# Race detection on the example pair
# =====================================================================
def test_racy_example_reports_hl019_and_hl020_with_witness():
    engine = DiagnosticsEngine()
    with open(RACY) as handle:
        report = analyze(handle.read(), engine=engine)
    codes = [d.code for d in engine.findings]
    assert "HL019" in codes and "HL020" in codes
    assert report.races and report.torn
    # two-site witness: a mainline site and an ISR site, plus the
    # interleaving window the ISR may fire inside
    witness = report.races[0].witness_lines()
    assert any("mainline" in line for line in witness)
    assert any("isr" in line for line in witness)
    assert any("interleaving window" in line for line in witness)
    # the torn finding is the 16-bit counter at 0x0700/0x0701
    torn = next(d for d in engine.findings if d.code == "HL020")
    assert "0x0700..0x0701" in torn.message


def test_racy_example_cli_protected_stores_are_atomic():
    """safe_reset's stores sit between cli/sei: interrupt-atomic, so
    they must not be flagged even though they hit the shared counter."""
    with open(RACY) as handle:
        report = analyze(handle.read())
    racy_pcs = {f.mainline.byte_addr for f in report.races}
    racy_pcs |= {s.byte_addr for f in report.torn
                 for s in f.mainline.sites}
    # safe_reset starts after sample_poll's 6 instructions (0x12 = ret)
    assert report.atomic_instrs > 0
    assert all(pc < 0x14 for pc in racy_pcs), racy_pcs


def test_clean_example_is_race_free():
    engine = DiagnosticsEngine()
    with open(CLEAN) as handle:
        report = analyze(handle.read(), engine=engine)
    assert not engine.findings
    assert not report.races and not report.torn
    assert not report.isrs
    # no cli, no ISRs: nothing is interrupt-disabled, and the only
    # latency term left is the instruction-boundary skew
    assert report.latency.disabled_cycles == 0
    assert report.latency.bound == report.latency.max_instr_cycles


def test_isr_label_conventions():
    isrs = find_isr_labels({"__vector_3": 0x10, "uart_isr": 0x20,
                            "isr_spi": 0x30, "main": 0x00})
    assert [(i.line, i.name) for i in isrs] == [
        (3, "__vector_3"), (4, "isr_spi"), (5, "uart_isr")]


def test_vector_table_discovery():
    src = ("    jmp main\n"
           "    jmp tick\n"
           "main:\n    break\n"
           "tick:\n    reti\n")
    program = assemble(src)
    words = dict(program.words)
    isrs = vector_table_isrs(lambda w: words.get(w, 0xFFFF), nvectors=2)
    assert len(isrs) == 1
    assert isrs[0].line == 1
    assert isrs[0].entry == program.symbols["tick"]


# =====================================================================
# I-bit partition and the latency certificate
# =====================================================================
def test_sreg_save_restore_idiom_keeps_region_atomic():
    """in/cli/.../out SREG restore: the region stays atomic through the
    restore because the saved I value flows back out of the register."""
    src = ("f:\n"
           "    in r18, 0x3f\n"
           "    cli\n"
           "    sts 0x0700, r24\n"
           "    out 0x3f, r18\n"
           "    sts 0x0701, r24\n"
           "    ret\n"
           "isr_tick:\n"
           "    sts 0x0700, r25\n"
           "    sts 0x0701, r25\n"
           "    reti\n")
    program = assemble(src)
    report = analyze(src, mainline=["f"])
    # f is a mainline entry, so I is ON when `in r18` snapshots it; the
    # store inside cli/out is protected, while the store after the
    # restore runs with I back ON and is the single racing site
    assert len(report.races) == 1
    assert report.races[0].mainline.byte_addr == \
        program.symbols["f"] + 10


def test_counted_loop_wcet_is_bounded():
    src = ("__vector_1:\n"
           "    ldi r20, 5\n"
           "lp:\n"
           "    dec r20\n"
           "    brne lp\n"
           "    reti\n")
    report = analyze(src, mainline=[])
    (entry,) = report.latency.per_isr
    # ldi(1) + 5 iterations of dec(1)+brne(2, conservatively counted
    # as taken on the final trip too) + reti(4) = 1 + 15 + 4
    assert entry.wcet == 20


def test_unbounded_isr_raises_hl021():
    src = ("__vector_1:\n"
           "spin:\n"
           "    rjmp spin\n")
    engine = DiagnosticsEngine()
    report = analyze(src, engine=engine, mainline=[])
    (entry,) = report.latency.per_isr
    assert entry.wcet is None
    assert report.latency.bound is None
    assert any(d.code == "HL021" for d in engine.findings)


def test_latency_budget_violation_raises_hl021():
    with open(RACY) as handle:
        src = handle.read()
    engine = DiagnosticsEngine()
    report = analyze(src, engine=engine, budget=5)
    assert report.latency.bound > 5
    assert any(d.code == "HL021" and "budget" in d.message
               for d in engine.findings)
    # a generous budget is silent
    engine2 = DiagnosticsEngine()
    analyze(src, engine=engine2, budget=10_000)
    assert not any(d.code == "HL021" for d in engine2.findings)


# =====================================================================
# Static bound vs runtime observation
# =====================================================================
IRQ_WORKLOAD = (
    "    jmp main\n"
    "    jmp tick_isr\n"
    "main:\n"
    "    sei\n"
    "    ldi r16, 8\n"
    "spin:\n"
    "    lds r24, 0x0700\n"
    "    lds r25, 0x0701\n"
    "    adiw r24, 1\n"
    "    sts 0x0700, r24\n"
    "    sts 0x0701, r25\n"
    "    dec r16\n"
    "    brne spin\n"
    "    cli\n"
    "    sts 0x0700, r16\n"
    "    sts 0x0701, r16\n"
    "    sei\n"
    "    break\n"
    "tick_isr:\n"
    "    push r24\n"
    "    lds r24, 0x0700\n"
    "    inc r24\n"
    "    sts 0x0700, r24\n"
    "    pop r24\n"
    "    reti\n")


def run_irq_workload(period=40):
    machine = Machine(assemble(IRQ_WORKLOAD))
    controller = InterruptController(machine.core, nvectors=2)
    machine.attach_metrics()
    PeriodicTimer(controller, line=1, period=period).install(machine.core)
    machine.run(max_cycles=100_000)
    assert controller.taken > 0
    hist = machine.core.metrics.histogram(
        "irq_entry_latency", buckets=(4, 8, 16, 32, 64, 128, 256),
        line=1)
    return machine, hist


def static_workload_report(engine=None, budget=None):
    program = assemble(IRQ_WORKLOAD)
    words = dict(program.words)
    read = lambda w: words.get(w, 0xFFFF)
    isrs = vector_table_isrs(read, nvectors=2)
    lo, hi = program.extent()
    labels = sorted(v for k, v in program.symbols.items()
                    if k not in set(default_symbols()))
    cfg = RegionCFG.build(read, lo * 2, (hi + 1) * 2, name="irq",
                          extra_leaders=labels)
    analysis = ConcurrencyAnalysis(
        cfg, mainline_entries=[program.symbols["main"]], isrs=isrs)
    return analysis.run(engine=engine, budget=budget)


def test_static_latency_bound_covers_runtime_maximum():
    report = static_workload_report()
    bound = report.latency.bound
    assert bound is not None
    for period in (23, 40, 97):
        _machine, hist = run_irq_workload(period)
        assert hist.max is not None
        assert hist.max <= bound, (hist.max, bound)


def test_workload_races_are_detected_statically():
    engine = DiagnosticsEngine()
    report = static_workload_report(engine=engine)
    assert report.races, "the spin loop RMW must race tick_isr"
    assert any(d.code == "HL019" for d in engine.findings)
    assert any(d.code == "HL020" for d in engine.findings)


def test_publish_gauges():
    report = static_workload_report()
    registry = publish_gauges(MetricsRegistry(), report)
    doc = registry.to_dict()
    gauges = {(g["name"], tuple(sorted(g["labels"].items()))): g["value"]
              for g in doc["gauges"]}
    assert gauges[("static_max_irq_latency", ())] == report.latency.bound
    (entry,) = report.latency.per_isr
    assert gauges[("static_isr_wcet", (("vector", "1"),))] == entry.wcet


def test_histogram_tracks_max():
    registry = MetricsRegistry()
    hist = registry.histogram("h", buckets=(1, 2))
    assert hist.max is None
    hist.observe(1)
    hist.observe(7)
    hist.observe(3)
    assert hist.max == 7
    entry = registry.to_dict()["histograms"][0]
    assert entry["max"] == 7


# =====================================================================
# Fast-path interrupt delivery (hypothesis differential)
# =====================================================================
def _ibit_program(prologue, body):
    lines = ["    jmp main", "    jmp tick_isr", "main:"]
    lines += ["    " + op for op in prologue]
    lines += body
    lines += ["    break",
              "tick_isr:",
              "    inc r20",
              "    reti",
              # reti as an I-bit manipulation outside an ISR: rcall
              # pushes the resume address, reti pops it and sets I
              "do_reti:",
              "    reti"]
    return "\n".join(lines) + "\n"


def _run_irq_path(src, raises, instrumented):
    machine = Machine(assemble(src))
    controller = InterruptController(machine.core, nvectors=2)
    if instrumented:
        machine.attach_trace()
    for _ in range(raises):
        controller.raise_irq(1)
    machine.run(max_cycles=50_000)
    return machine, controller


@settings(max_examples=60, deadline=None)
@given(st.lists(st.sampled_from(("cli", "sei", "reti", "nop",
                                 "in r18, 0x3f", "out 0x3f, r18",
                                 "inc r21")),
                min_size=0, max_size=12),
       st.integers(min_value=0, max_value=2))
def test_ibit_sequences_deliver_identically_on_both_paths(ops, raises):
    """Any cli/sei/reti/SREG-save-restore sequence must take pending
    interrupts at the same instruction boundary, for the same cycle
    cost, on the fast loop and the step() loop."""
    body = []
    for op in ops:
        if op == "reti":
            # a bare reti would pop an empty stack; rcall pushes the
            # resume address the reti consumes (and I comes back on)
            body.append("    rcall do_reti")
        else:
            body.append("    " + op)
    src = _ibit_program(["sei"], body)
    fast_m, fast_c = _run_irq_path(src, raises, instrumented=False)
    slow_m, slow_c = _run_irq_path(src, raises, instrumented=True)
    assert fast_m.core.cycles == slow_m.core.cycles
    assert fast_m.core.instret == slow_m.core.instret
    assert fast_m.core.pc == slow_m.core.pc
    assert fast_c.taken == slow_c.taken
    assert bytes(fast_m.core.memory.data) == \
        bytes(slow_m.core.memory.data)


def test_fast_path_takes_pending_interrupt():
    """An attached interrupt controller alone must not force the
    instrumented path, and the fast loop must still vector."""
    src = _ibit_program(["sei"], ["    inc r21"] * 6)
    machine = Machine(assemble(src))
    controller = InterruptController(machine.core, nvectors=2)
    calls = []
    original = machine.core._run_fast
    machine.core._run_fast = lambda *a: calls.append(a) or original(*a)
    controller.raise_irq(1)
    machine.run(max_cycles=10_000)
    assert calls, "interrupt-only run must stay on the fast loop"
    assert controller.taken == 1
    assert machine.core.memory.data[20] == 1   # tick_isr ran


# =====================================================================
# Baseline suppressions
# =====================================================================
def test_baseline_round_trip(tmp_path):
    engine = DiagnosticsEngine()
    with open(RACY) as handle:
        src = handle.read()
    analyze(src, engine=engine)
    assert engine.findings
    path = tmp_path / "baseline.json"
    write_baseline(str(path), engine)
    doc = json.loads(path.read_text())
    assert doc["schema"] == 1
    assert all({"rule", "pc", "fingerprint"} <= set(s)
               for s in doc["suppressions"])

    engine2 = DiagnosticsEngine()
    analyze(src, engine=engine2)
    suppressed = apply_baseline(engine2, load_baseline(str(path)))
    assert suppressed > 0
    assert not engine2.findings


def test_baseline_does_not_mask_new_findings(tmp_path):
    engine = DiagnosticsEngine()
    with open(CLEAN) as handle:
        clean = handle.read()
    analyze(clean, engine=engine)
    path = tmp_path / "baseline.json"
    write_baseline(str(path), engine)     # empty baseline

    engine2 = DiagnosticsEngine()
    with open(RACY) as handle:
        analyze(handle.read(), engine=engine2)
    before = len(engine2.findings)
    assert apply_baseline(engine2, load_baseline(str(path))) == 0
    assert len(engine2.findings) == before


def test_baseline_schema_mismatch_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": 99, "suppressions": []}))
    with pytest.raises(ValueError):
        load_baseline(str(path))


def test_cmd_lint_baseline_flow(tmp_path, capsys):
    from repro.cli import cmd_lint
    miscompiled = "examples/modules/miscompiled.s"
    base = tmp_path / "lint-baseline.json"
    # snapshot the known findings; writing the baseline never gates
    assert cmd_lint(["--unchecked", miscompiled,
                     "--write-baseline", str(base)]) == 0
    capsys.readouterr()
    # with the baseline the same findings are suppressed and the
    # --fail-on contract sees a clean module
    assert cmd_lint(["--unchecked", miscompiled,
                     "--baseline", str(base)]) == 0
    captured = capsys.readouterr()
    assert "suppressed by baseline" in captured.err
    # without it the module still fails
    assert cmd_lint(["--unchecked", miscompiled]) == 1


def test_image_analyzer_surfaces_concurrency():
    """ImageAnalyzer analysis 5: a region with discovered handlers gets
    a concurrency report in the image report and its dict export."""
    from repro.analysis.static import ImageModel, ModuleRegion, \
        analyze_image
    from repro.asm import Assembler
    from repro.sfi.system import SfiSystem

    system = SfiSystem()
    src = ("poll:\n"
           "    lds r24, 0x0700\n"
           "    inc r24\n"
           "    sts 0x0700, r24\n"
           "    ret\n"
           "__vector_1:\n"
           "    sts 0x0700, r25\n"
           "    reti\n")
    prog = Assembler(symbols=system.kernel_symbols()).assemble(src,
                                                               "irqmod")
    lo, hi = prog.extent()
    base = system._next_load
    mem = system.machine.memory
    for word_addr, value in prog.words.items():
        mem.write_flash_word(base // 2 + word_addr - lo, value)
    system.machine.core.invalidate_decode_cache()
    end = base + (hi - lo + 1) * 2
    entries = {n: base + a - lo * 2 for n, a in prog.symbols.items()
               if n not in set(default_symbols())
               and lo * 2 <= a <= hi * 2 + 1}
    region = ModuleRegion(name="irqmod", domain=0, start=base, end=end,
                          policy="sfi", entries=entries)
    model = ImageModel.from_system(system, extra_modules=[region])
    report = analyze_image(model)
    assert "irqmod" in report.concurrency
    conc = report.concurrency["irqmod"]
    assert [i.name for i in conc.isrs] == ["__vector_1"]
    assert conc.races, "the unprotected RMW must race __vector_1"
    doc = report.analysis_dict()
    assert doc["concurrency"]["irqmod"]["races"] >= 1
    assert any(d.code == "HL019" for d in report.diagnostics.findings)


# =====================================================================
# harbor-race CLI
# =====================================================================
def test_cmd_race_racy_module_exits_one(capsys):
    assert cmd_race([RACY]) == 1
    out = capsys.readouterr().out
    assert "HL019" in out and "HL020" in out
    assert "witness" in out
    assert "static_max_irq_latency" in out


def test_cmd_race_clean_module_exits_zero(capsys):
    assert cmd_race([CLEAN]) == 0
    out = capsys.readouterr().out
    assert "no findings" in out
    assert "0 race(s)" in out


def test_cmd_race_elided_logger_is_race_free(capsys):
    assert cmd_race(["examples/modules/static_logger.s",
                     "--static-data", "256"]) == 0
    assert "0 race(s)" in capsys.readouterr().out


def test_cmd_race_json_and_latency_report(tmp_path, capsys):
    out_file = tmp_path / "race.json"
    lat_file = tmp_path / "latency.json"
    assert cmd_race([RACY, "--format", "json", "-o", str(out_file),
                     "--latency-report", str(lat_file)]) == 1
    doc = json.loads(out_file.read_text())
    conc = doc["analysis"]["concurrency"]["racy_sampler"]
    assert conc["races"] >= 1 and conc["torn"] >= 1
    assert conc["latency"]["bound"] is not None
    lat = json.loads(lat_file.read_text())
    assert lat["schema"] == 1
    assert lat["regions"]["racy_sampler"]["isrs"][0]["wcet"] is not None


def test_cmd_race_sarif_help_uris(capsys):
    assert cmd_race([RACY, "--format", "sarif"]) == 1
    doc = json.loads(capsys.readouterr().out)
    driver = doc["runs"][0]["tool"]["driver"]
    rules = {r["id"]: r for r in driver["rules"]}
    for code in ("HL019", "HL020"):
        assert code in rules
        assert rules[code]["helpUri"].startswith(
            "docs/static-analysis.md#")


def test_cmd_race_latency_budget_gates(capsys):
    # clean_sensor's bound is just the instruction-boundary skew, well
    # under a 100-cycle budget
    assert cmd_race([CLEAN, "--latency-budget", "100",
                     "--fail-on", "warning"]) == 0
    # the racy module's bound (ISR WCET + response + skew) blows a
    # 5-cycle budget and trips the warning gate
    assert cmd_race([RACY, "--latency-budget", "5",
                     "--fail-on", "warning"]) == 1
    assert "HL021" in capsys.readouterr().out
