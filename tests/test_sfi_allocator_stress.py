"""Stress the assembly allocator with random operation sequences.

The asm first-fit allocator is the most intricate hand-written code in
the runtime; this suite replays random malloc/free/change_own sequences
on the simulator and checks the global invariants after every step:

* returned segments never overlap and cover their requests;
* the memory map's codes agree with the header owners for every live
  allocation, and freed blocks read as free;
* the free list is a terminating, heap-confined chain whose total bytes
  plus live bytes equals the heap;
* allocate-everything-free-everything restores full capacity.
"""

from hypothesis import given, settings, strategies as st

from repro.sfi.layout import SfiLayout
from repro.sim import Machine

LAYOUT = SfiLayout()


def fresh_machine(runtime_program):
    machine = Machine(runtime_program)
    machine.call("hb_init", max_cycles=100000)
    return machine


def gross(nbytes):
    return (nbytes + LAYOUT.heap_header + 7) & ~7


def walk_free_list(machine):
    """Follow the free list; returns [(addr, size)], asserting sanity."""
    out = []
    node = machine.read_word(LAYOUT.freelist)
    seen = set()
    while node:
        assert LAYOUT.heap_start <= node < LAYOUT.heap_end, hex(node)
        assert node not in seen, "free list cycle"
        seen.add(node)
        size = machine.read_word(node)
        assert size >= 8 and size % 8 == 0
        assert node + size <= LAYOUT.heap_end
        out.append((node, size))
        node = machine.read_word(node + 2)
        assert len(out) < 512, "free list runaway"
    return out


def memmap_code(machine, addr):
    cfg = LAYOUT.memmap_config
    block = cfg.block_of(addr)
    byte = machine.memory.read_data(LAYOUT.memmap_table + block // 2)
    return (byte >> (4 * (block % 2))) & 0xF


def check_invariants(machine, live):
    """*live* is {user_ptr: (nbytes, owner)}."""
    # 1. disjoint segments, headers consistent, memmap agrees
    spans = []
    for ptr, (nbytes, owner) in live.items():
        base = ptr - LAYOUT.heap_header
        size = machine.read_word(base)
        assert size == gross(nbytes)
        assert machine.memory.read_data(base + 2) == owner
        spans.append((base, base + size))
        for off in range(0, size, 8):
            code = memmap_code(machine, base + off)
            assert code >> 1 == owner
            assert (code & 1) == (1 if off == 0 else 0)
    spans.sort()
    for (a0, a1), (b0, _b1) in zip(spans, spans[1:]):
        assert a1 <= b0, "overlapping allocations"
    # 2. free list accounting
    free = walk_free_list(machine)
    free_bytes = sum(size for _a, size in free)
    live_bytes = sum(gross(n) for n, _o in live.values())
    assert free_bytes + live_bytes == LAYOUT.heap_end - LAYOUT.heap_start
    # 3. free nodes marked free in the memory map
    for addr, size in free:
        for off in range(0, size, 8):
            assert memmap_code(machine, addr + off) == 0xF


@settings(max_examples=25, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["malloc", "free", "chown"]),
              st.integers(1, 100), st.integers(0, 6)),
    min_size=1, max_size=40))
def test_property_asm_allocator_invariants(runtime_program_global, ops):
    machine = fresh_machine(runtime_program_global)
    live = {}
    for op, size, dom in ops:
        if op == "malloc":
            machine.memory.write_data(LAYOUT.cur_dom, dom)
            machine.call("hb_malloc", size, max_cycles=100000)
            ptr = machine.result16()
            if ptr:
                live[ptr] = (size, dom)
        elif op == "free" and live:
            ptr = sorted(live)[size % len(live)]
            _n, owner = live.pop(ptr)
            machine.memory.write_data(LAYOUT.cur_dom, owner)
            machine.call("hb_free", ptr, max_cycles=100000)
        elif op == "chown" and live:
            ptr = sorted(live)[size % len(live)]
            nbytes, owner = live[ptr]
            machine.memory.write_data(LAYOUT.cur_dom, owner)
            machine.call("hb_change_own", ptr, ("u8", dom),
                         max_cycles=100000)
            live[ptr] = (nbytes, dom)
        assert not machine.core.halted, "unexpected fault"
        check_invariants(machine, live)


def test_alloc_all_free_all_restores_capacity(runtime_program_global):
    machine = fresh_machine(runtime_program_global)
    ptrs = []
    while True:
        machine.call("hb_malloc", 56, max_cycles=100000)
        ptr = machine.result16()
        if not ptr:
            break
        ptrs.append(ptr)
    assert len(ptrs) == (LAYOUT.heap_end - LAYOUT.heap_start) // 64
    for ptr in ptrs:
        machine.call("hb_free", ptr, max_cycles=100000)
    # note: the asm allocator does not coalesce, but same-size reuse
    # must recover every slot
    again = []
    while True:
        machine.call("hb_malloc", 56, max_cycles=100000)
        ptr = machine.result16()
        if not ptr:
            break
        again.append(ptr)
    assert sorted(again) == sorted(ptrs)


def test_writes_within_allocation_never_corrupt_metadata(
        runtime_program_global):
    """Filling every byte of an allocation touches no header of any
    *other* allocation and no free-list node."""
    machine = fresh_machine(runtime_program_global)
    machine.call("hb_malloc", 24)
    a = machine.result16()
    machine.call("hb_malloc", 24)
    b = machine.result16()
    for i in range(24):
        machine.memory.write_data(a + i, 0xAA)
    assert machine.read_word(b - LAYOUT.heap_header) == gross(24)
    walk_free_list(machine)
    check_invariants(machine, {a: (24, 7), b: (24, 7)})
