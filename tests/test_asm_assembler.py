"""Assembler tests: syntax, directives, aliases, relocation records."""

import pytest

from repro.asm import AsmError, Assembler, assemble
from repro.asm.assembler import parse_register
from repro.isa.encoding import decode_words, encode


def words_of(program):
    lo, hi = program.extent()
    return [program.word(i) for i in range(lo, hi + 1)]


def first_instr(source, **kw):
    program = assemble(source, **kw)
    lo, _hi = program.extent()
    w0 = program.word(lo)
    w1 = program.word(lo + 1) if lo + 1 in program.words else None
    return decode_words(w0, w1)


# ---------------------------------------------------------------------
# basics
# ---------------------------------------------------------------------
def test_simple_program():
    p = assemble("""
    start:
        ldi r16, 1
        add r16, r16
        ret
    """)
    assert p.symbol("start") == 0
    assert words_of(p) == [0xE001, 0x0F00, 0x9508]


def test_labels_and_branches():
    p = assemble("""
    loop:
        dec r16
        brne loop
        rjmp loop
    """)
    w = words_of(p)
    assert decode_words(w[1]).operands == (1, -2)   # brbc Z, -2
    assert decode_words(w[2]).operands == (-3,)     # rjmp back


def test_forward_reference():
    p = assemble("""
        rjmp done
        nop
    done:
        ret
    """)
    assert decode_words(p.word(0)).operands == (1,)


def test_case_insensitive_mnemonics_and_registers():
    i = first_instr("    LDI R16, 0x10\n")
    assert i.key == "ldi"
    assert i.operands == (16, 0x10)


def test_comments():
    p = assemble("""
    ; full line comment
        nop        ; trailing
        nop        // c++ style
    """)
    assert len(p.words) == 2


def test_parse_register():
    assert parse_register("r0") == 0
    assert parse_register("R31") == 31
    assert parse_register("XL") == 26
    assert parse_register("zh") == 31
    assert parse_register("r32") is None
    assert parse_register("foo") is None


# ---------------------------------------------------------------------
# addressing modes
# ---------------------------------------------------------------------
@pytest.mark.parametrize("src,key,operands", [
    ("ld r5, X", "ld_x", (5,)),
    ("ld r5, X+", "ld_xp", (5,)),
    ("ld r5, -X", "ld_mx", (5,)),
    ("ld r5, Y+", "ld_yp", (5,)),
    ("ld r5, -Y", "ld_my", (5,)),
    ("ld r5, Y", "ldd_y", (5, 0)),
    ("ld r5, Z", "ldd_z", (5, 0)),
    ("ldd r5, Y+12", "ldd_y", (5, 12)),
    ("ldd r5, Z+63", "ldd_z", (5, 63)),
    ("st X, r5", "st_x", (5,)),
    ("st X+, r5", "st_xp", (5,)),
    ("st -X, r5", "st_mx", (5,)),
    ("st Z+, r5", "st_zp", (5,)),
    ("st Y, r5", "std_y", (0, 5)),
    ("std Y+3, r5", "std_y", (3, 5)),
    ("std Z+1, r0", "std_z", (1, 0)),
    ("lpm", "lpm_r0", ()),
    ("lpm r9, Z", "lpm", (9,)),
    ("lpm r9, Z+", "lpm_zp", (9,)),
])
def test_addressing_modes(src, key, operands):
    i = first_instr("    {}\n".format(src))
    assert i.key == key
    assert i.operands == tuple(operands)


def test_x_displacement_rejected():
    with pytest.raises(AsmError):
        assemble("    ldd r5, X+1\n")


# ---------------------------------------------------------------------
# aliases
# ---------------------------------------------------------------------
@pytest.mark.parametrize("src,canonical", [
    ("clr r5", ("eor", (5, 5))),
    ("lsl r6", ("add", (6, 6))),
    ("rol r7", ("adc", (7, 7))),
    ("tst r8", ("and", (8, 8))),
    ("ser r17", ("ldi", (17, 0xFF))),
    ("sbr r16, 0x03", ("ori", (16, 0x03))),
    ("cbr r16, 0x03", ("andi", (16, 0xFC))),
    ("sei", ("bset", (7,))),
    ("cli", ("bclr", (7,))),
    ("sec", ("bset", (0,))),
    ("clt", ("bclr", (6,))),
])
def test_aliases(src, canonical):
    i = first_instr("    {}\n".format(src))
    assert (i.key, i.operands) == canonical


@pytest.mark.parametrize("src,flag,is_set", [
    ("breq t", 1, True), ("brne t", 1, False),
    ("brcs t", 0, True), ("brcc t", 0, False),
    ("brlo t", 0, True), ("brsh t", 0, False),
    ("brmi t", 2, True), ("brpl t", 2, False),
    ("brlt t", 4, True), ("brge t", 4, False),
    ("brts t", 6, True), ("brtc t", 6, False),
])
def test_branch_aliases(src, flag, is_set):
    p = assemble("t:\n    {}\n".format(src))
    i = decode_words(p.word(0))
    assert i.key == ("brbs" if is_set else "brbc")
    assert i.operands[0] == flag


# ---------------------------------------------------------------------
# directives
# ---------------------------------------------------------------------
def test_org():
    p = assemble("""
        nop
    .org 0x100
    here:
        ret
    """)
    assert p.symbol("here") == 0x100
    assert p.word(0x80) == 0x9508


def test_equ_both_styles():
    p = assemble("""
    .equ A = 5
    .equ B, 7
    C = A + B
        ldi r16, C
    """)
    assert decode_words(p.word(0)).operands == (16, 12)


def test_db_dw_and_strings():
    p = assemble("""
    data:
    .db 1, 2, 0xFF
    .db "ab"
    .align 2
    words:
    .dw 0x1234, data
    """)
    assert p.symbol("data") == 0
    # bytes 1,2,0xff,'a','b' then align-pad, then words
    assert p.word(0) == 0x0201
    assert p.word(1) == (ord("a") << 8) | 0xFF
    assert p.word(2) == (0 << 8) | ord("b")
    assert p.symbol("words") == 6
    assert p.word(3) == 0x1234
    assert p.word(4) == 0x0000  # address of `data`


def test_space():
    p = assemble("""
    .space 4, 0xEE
    after:
        nop
    """)
    assert p.symbol("after") == 4
    assert p.word(0) == 0xEEEE


def test_align():
    p = assemble("""
    .db 1
    .align 4
    code:
        nop
    """)
    assert p.symbol("code") == 4


# ---------------------------------------------------------------------
# expressions in operands / hi8 lo8
# ---------------------------------------------------------------------
def test_lo8_hi8_operands():
    p = assemble("""
    .equ buf = 0x0234
        ldi r26, lo8(buf)
        ldi r27, hi8(buf)
    """)
    assert decode_words(p.word(0)).operands == (26, 0x34)
    assert decode_words(p.word(1)).operands == (27, 0x02)


def test_pm_operands():
    p = assemble("""
        ldi r30, pm_lo8(target)
        ldi r31, pm_hi8(target)
    .org 0x0400
    target:
        ret
    """)
    assert decode_words(p.word(0)).operands == (30, 0x00)
    assert decode_words(p.word(1)).operands == (31, 0x02)


def test_jmp_call_word_addressing():
    p = assemble("""
        jmp far
        call far
    .org 0x2000
    far:
        ret
    """)
    assert decode_words(p.word(0), p.word(1)).operands == (0x1000,)
    assert decode_words(p.word(2), p.word(3)).operands == (0x1000,)


def test_predefined_symbols():
    p = assemble("    ldi r16, hi8(RAMEND)\n")
    assert decode_words(p.word(0)).operands == (16, 0x0F)


def test_custom_symbols():
    a = Assembler(symbols={"MAGIC": 0x77})
    p = a.assemble("    ldi r16, MAGIC\n")
    assert decode_words(p.word(0)).operands == (16, 0x77)


# ---------------------------------------------------------------------
# errors
# ---------------------------------------------------------------------
@pytest.mark.parametrize("src,fragment", [
    ("    frob r1\n", "unknown mnemonic"),
    ("    ldi r5, 1\n", "out of range"),        # ldi needs r16+
    ("    add r1\n", "operand"),
    ("a:\na:\n    nop\n", "redefined"),
    ("    rjmp nowhere\n", "undefined symbol"),
    ("    ldi r16, )\n", "unexpected"),
    (".bogus 1\n", "unknown directive"),
    ("    brne far\n.org 0x200\nfar: ret\n", "out of range"),
])
def test_errors(src, fragment):
    with pytest.raises(AsmError) as err:
        assemble(src)
    assert fragment in str(err.value)


def test_error_carries_line_number():
    with pytest.raises(AsmError) as err:
        assemble("    nop\n    nop\n    frob\n")
    assert err.value.line == 3


def test_odd_instruction_address_rejected():
    with pytest.raises(AsmError):
        assemble(".db 1\n    nop\n")


# ---------------------------------------------------------------------
# relocations
# ---------------------------------------------------------------------
def test_reloc_records():
    p = assemble("""
        rjmp target
        call target
        ldi r30, pm_lo8(target)
        ldi r31, pm_hi8(target)
        lds r4, var
    .equ var = 0x100
    target:
        ret
    """)
    funcs = {(r.func, r.symbol) for r in p.relocs}
    assert ("rel12", "target") in funcs
    assert ("addr22", "target") in funcs
    assert ("pm_lo8", "target") in funcs
    assert ("pm_hi8", "target") in funcs
    assert ("addr16", "var") in funcs


def test_listing_maps_words_to_lines():
    p = assemble("    nop\n    nop\n")
    assert p.listing[0] == 1
    assert p.listing[1] == 2


def test_program_helpers():
    p = assemble("    nop\n    ret\n")
    assert p.size_bytes == 4
    assert p.code_bytes == 4
    assert p.label_at(0) is None
    image = p.to_flash(16)
    assert image[0] == 0x0000 and image[1] == 0x9508
    assert image[2] == 0xFFFF
