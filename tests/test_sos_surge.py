"""The paper's §1.2 anecdote, as executable scenarios.

"Harbor detected memory corruption in a data collection application
module that had been in use for several months ... the invalid result of
a failed function call to the Tree routing module was being used to
determine an offset into a buffer."
"""

import pytest

from repro.core.faults import MemMapFault, ProtectionFault
from repro.sos import (
    FixedSurgeModule,
    SOS_ERROR,
    SosKernel,
    SurgeModule,
    TreeRoutingModule,
    TREE_ROUTING_HDR_SIZE,
)


def kernel(protected=True):
    k = SosKernel(protected=protected)
    k.set_sensor_series([42, 43, 44, 45])
    return k


# ---------------------------------------------------------------------
# the happy path: both modules, correct order
# ---------------------------------------------------------------------
def test_normal_data_collection():
    k = kernel()
    k.load_module(TreeRoutingModule())
    k.load_module(SurgeModule())
    for _ in range(3):
        k.post_timer("surge")
    k.run()
    assert not k.fault_log
    assert len(k.radio_log) == 3
    tree = k.modules["tree_routing"].module
    assert tree.forwarded == 3
    surge = k.modules["surge"].module
    assert surge.sent == 3


def test_packets_carry_sample_at_header_offset():
    k = kernel()
    k.load_module(TreeRoutingModule())
    k.load_module(SurgeModule())
    k.post_timer("surge")
    # intercept before tree routing frees it: run only surge's message
    k.run(max_messages=1)
    # the packet is queued to tree_routing; find its payload
    msg = k.queue.take()
    assert msg.dst == "tree_routing"
    assert k.harbor.load(msg.payload + TREE_ROUTING_HDR_SIZE) == 42


# ---------------------------------------------------------------------
# the bug: surge loaded before tree routing
# ---------------------------------------------------------------------
def test_harbor_catches_wild_store():
    k = kernel()
    k.load_module(SurgeModule())   # tree routing absent!
    k.post_timer("surge")
    k.run()
    assert len(k.fault_log) == 1
    log = k.fault_log[0]
    assert log.module == "surge"
    assert isinstance(log.fault, MemMapFault)
    assert k.modules["surge"].state == "crashed"


def test_fault_is_at_packet_plus_error_code():
    k = kernel()
    k.load_module(SurgeModule())
    k.post_timer("surge")
    k.run()
    fault = k.fault_log[0].fault
    surge = k.modules["surge"].module
    # the wild address is packet + 0xFF: prove the offset used was the
    # unchecked SOS error code
    sub = surge.get_hdr_size
    assert sub.failures == 1
    # reconstruct: last allocation of surge was the packet
    segs = [(s, o) for s, _n, o in k.harbor.memmap.segments() if o == 0]
    packet = max(s for s, _ in segs)
    assert fault.addr == packet + SOS_ERROR


def test_unprotected_node_corrupts_silently():
    k = kernel(protected=False)
    k.load_module(SurgeModule())
    surge_dom = k.modules["surge"].domain.did
    k.post_timer("surge")
    k.run()
    assert not k.fault_log
    assert k.modules["surge"].state == "loaded"  # nobody noticed
    # ... but memory surge does NOT own now holds the sensor sample
    heap = k.harbor.heap
    dirty = [a for a in range(heap.start, heap.end)
             if k.harbor.load(a) == 42
             and k.harbor.memmap.owner_of(a) != surge_dom]
    assert dirty, "wild store left no trace outside surge's domain"


def test_rare_condition_is_load_order():
    """Same modules, swapped load order: the identical binary is safe
    — which is why testing missed the bug."""
    k = kernel()
    k.load_module(TreeRoutingModule())
    k.load_module(SurgeModule())
    k.post_timer("surge")
    k.run()
    assert not k.fault_log


def test_late_tree_routing_load_recovers():
    """After tree routing appears and surge restarts, collection works."""
    k = SosKernel(protected=True, restart_crashed=True)
    k.set_sensor_series([42, 43])
    k.load_module(SurgeModule())
    k.post_timer("surge")
    k.run()
    assert len(k.fault_log) == 1
    k.load_module(TreeRoutingModule())
    k.post_timer("surge")
    k.run()
    assert len(k.fault_log) == 1      # no new faults
    assert len(k.radio_log) == 1


def test_fixed_surge_checks_error_code():
    k = kernel()
    k.load_module(FixedSurgeModule())
    k.post_timer("surge")
    k.run()
    assert not k.fault_log
    surge = k.modules["surge"].module
    assert surge.skipped == 1
    assert surge.sent == 0


def test_tree_routing_without_route_returns_error():
    k = kernel()
    k.load_module(TreeRoutingModule(has_parent=False))
    k.load_module(FixedSurgeModule())
    k.post_timer("surge")
    k.run()
    assert not k.fault_log
    assert k.modules["surge"].module.skipped == 1


def test_buggy_surge_with_routeless_tree_also_caught():
    """The same wild store happens when tree routing is loaded but has
    no parent — Harbor catches that variant too."""
    k = kernel()
    k.load_module(TreeRoutingModule(has_parent=False))
    k.load_module(SurgeModule())
    k.post_timer("surge")
    k.run()
    assert len(k.fault_log) == 1
    assert isinstance(k.fault_log[0].fault, ProtectionFault)


def test_long_running_collection():
    """Months-in-deployment flavour: many cycles, zero faults, balanced
    memory (no leaks — every packet freed by tree routing)."""
    k = SosKernel(protected=True)
    k.set_sensor_series(range(1, 101))
    k.load_module(TreeRoutingModule())
    k.load_module(SurgeModule())
    free_before = k.harbor.heap.free_bytes
    for _ in range(100):
        k.post_timer("surge")
        k.run(max_messages=10)
    assert not k.fault_log
    assert len(k.radio_log) == 100
    # modules' steady-state memory only (tree state + surge none)
    assert k.harbor.heap.free_bytes == free_before
    k.harbor.heap.check_invariants()
