"""Peripheral devices: periodic timer and output port."""

import pytest

from repro.asm import assemble
from repro.sim import (
    InterruptController,
    Machine,
    OutputPort,
    PeriodicTimer,
)

PROGRAM = """
    jmp main                ; reset vector
    jmp tick_handler        ; vector 1

main:
    sei
spin:
    inc r20
    cpi r20, 200
    brne spin
    break

tick_handler:
    inc r16                 ; count timer ticks
    ldi r17, 0x41
    out 0x0C, r17           ; transmit an 'A' per tick
    reti
"""


def build():
    m = Machine(assemble(PROGRAM, "devices"))
    irq = InterruptController(m.core, nvectors=4, vector_stride_words=2)
    timer = PeriodicTimer(irq, line=1, period=100).install(m.core)
    port = OutputPort(0x0C).attach(m.memory)
    return m, timer, port


def test_timer_fires_periodically():
    m, timer, _port = build()
    m.run(max_cycles=5000)
    # the spin loop runs ~600+ cycles; at period 100 several ticks land
    assert timer.fired >= 4
    assert m.core.reg(16) == m.core.interrupts.taken


def test_timer_preempts_but_program_completes():
    m, _timer, _port = build()
    m.run(max_cycles=10000)
    assert m.core.reg(20) == 200  # main loop unharmed by preemption
    assert m.memory.sp == m.geometry.ramend


def test_output_port_collects_bytes():
    m, timer, port = build()
    m.run(max_cycles=10000)
    data = port.take()
    assert data == b"A" * timer.fired
    assert port.take() == b""  # drained


def test_output_port_status_read():
    m, _timer, port = build()
    port.io_write(0x2C, 0x58)
    assert port.io_read(0x2C) == 1


def test_timer_disable():
    m, timer, _port = build()
    timer.enabled = False
    m.run(max_cycles=5000)
    assert timer.fired == 0


def test_timer_validates_period():
    m, _t, _p = build()
    with pytest.raises(ValueError):
        PeriodicTimer(m.core.interrupts, period=0)
