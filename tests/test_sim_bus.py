"""Bus interposer mechanics and tracing."""

import pytest

from repro.sim import (
    AccessKind,
    BusInterposer,
    BusTracer,
    DataBus,
    Memory,
    ReadAction,
    WriteAction,
)


class Recorder(BusInterposer):
    def __init__(self):
        self.writes = []
        self.reads = []

    def on_write(self, bus, addr, value, kind):
        self.writes.append((addr, value, kind))
        return None

    def on_read(self, bus, addr, kind):
        self.reads.append((addr, kind))
        return None


def test_passthrough_observation():
    mem = Memory()
    bus = DataBus(mem)
    rec = bus.add_interposer(Recorder())
    bus.write(0x200, 0x11)
    value, _ = bus.read(0x200)
    assert value == 0x11
    assert rec.writes == [(0x200, 0x11, AccessKind.DATA_STORE)]
    assert rec.reads == [(0x200, AccessKind.DATA_LOAD)]


def test_write_redirect():
    class Redirect(BusInterposer):
        def on_write(self, bus, addr, value, kind):
            return WriteAction(redirect=addr + 0x100)

    mem = Memory()
    bus = DataBus(mem)
    bus.add_interposer(Redirect())
    bus.write(0x200, 0x22)
    assert mem.read_data(0x200) == 0
    assert mem.read_data(0x300) == 0x22


def test_write_handled_suppresses_memory():
    class Absorb(BusInterposer):
        def on_write(self, bus, addr, value, kind):
            return WriteAction(handled=True)

    mem = Memory()
    bus = DataBus(mem)
    bus.add_interposer(Absorb())
    bus.write(0x200, 0x33)
    assert mem.read_data(0x200) == 0


def test_read_value_override():
    class Feed(BusInterposer):
        def on_read(self, bus, addr, kind):
            return ReadAction(value=0x99)

    bus = DataBus(Memory())
    bus.add_interposer(Feed())
    value, _ = bus.read(0x200)
    assert value == 0x99


def test_extra_cycles_accumulate():
    class Slow(BusInterposer):
        def on_write(self, bus, addr, value, kind):
            return WriteAction(extra_cycles=2)

    bus = DataBus(Memory())
    bus.add_interposer(Slow())
    bus.add_interposer(Slow())
    assert bus.write(0x200, 1) == 4


def test_handled_stops_chain():
    order = []

    class First(BusInterposer):
        def on_write(self, bus, addr, value, kind):
            order.append("first")
            return WriteAction(handled=True)

    class Second(BusInterposer):
        def on_write(self, bus, addr, value, kind):
            order.append("second")
            return None

    bus = DataBus(Memory())
    bus.add_interposer(First())
    bus.add_interposer(Second())
    bus.write(0x200, 1)
    assert order == ["first"]


def test_remove_interposer():
    mem = Memory()
    bus = DataBus(mem)
    rec = bus.add_interposer(Recorder())
    bus.remove_interposer(rec)
    bus.write(0x200, 1)
    assert not rec.writes


def test_tracer_records_and_limits():
    bus = DataBus(Memory())
    tracer = BusTracer(limit=2)
    bus.tracer = tracer
    bus.write(0x200, 1)
    bus.write(0x201, 2)
    bus.write(0x202, 3)  # beyond limit, dropped
    assert len(tracer) == 2
    assert tracer.writes()[0].addr == 0x200
    tracer.clear()
    assert len(tracer) == 0


def test_tracer_notes_redirects():
    class Redirect(BusInterposer):
        def on_write(self, bus, addr, value, kind):
            return WriteAction(redirect=0x400)

    bus = DataBus(Memory())
    bus.add_interposer(Redirect())
    tracer = BusTracer()
    bus.tracer = tracer
    bus.write(0x200, 1)
    assert "redirected" in tracer.events[0].note


def test_access_kind_is_write():
    assert AccessKind.DATA_STORE.is_write
    assert AccessKind.RET_PUSH.is_write
    assert AccessKind.STACK_PUSH.is_write
    assert AccessKind.IO_WRITE.is_write
    assert not AccessKind.DATA_LOAD.is_write
    assert not AccessKind.RET_POP.is_write
