"""Proof-directed check elision: the StoreProver's classifications, the
ElisionManifest's binding to the image, the verifier's manifest
admission, and the differential guarantee that elision changes cycle
counts only.

The acceptance-critical properties pinned here:

* the prover classifies the two provable idioms (page-pinned fill loop,
  masked index into a page-aligned base) as ``in-domain-static``, and
  heap pointers stay ``unknown``;
* ``load_module(..., elide=True)`` produces a manifest whose sites all
  lint clean (no HL001 for the elided raw stores);
* a stale or forged manifest is rejected (HL014) and the raw stores
  revert to findings — the image that runs is the image that was
  proved;
* a provably-faulting store keeps its check and faults identically in
  checked and elided builds.
"""

import dataclasses
import json

import pytest

from repro.analysis.static import lint_system
from repro.analysis.static.cfg import RegionCFG
from repro.analysis.static.elision import (
    ELIDED_CHECK_CYCLES,
    ElisionManifest,
    PROOF_FAULTING,
    PROOF_IN_DOMAIN,
    PROOF_UNKNOWN,
    StoreProver,
    build_manifest,
    image_checksum,
    verify_manifest,
)
from repro.asm import assemble
from repro.core.faults import MemMapFault
from repro.sfi.layout import SfiLayout
from repro.sfi.system import SfiSystem
from repro.sfi.verifier import VerifyError


def _layout(domains=1):
    return SfiLayout(static_data_bytes=256, static_data_domains=domains)


def _fmt(template, layout, domain=0):
    spans = {"SDATA_D{}".format(d): "0x{:04x}".format(
                 layout.static_data_span(d)[0])
             for d in range(layout.static_data_domains)}
    return template.format(**spans)


# every store provable: the two idioms the prover is specified to handle
SPAN_MODULE = """
fill:
    ldi r26, lo8({SDATA_D0})
    ldi r27, hi8({SDATA_D0})
    ldi r24, 0xA5
    ldi r25, 16
f_loop:
    ldi r27, hi8({SDATA_D0})   ; re-pin the page across the back edge
    st X+, r24                 ; provable -> elided
    dec r25
    brne f_loop
    andi r24, 0x3F
    ldi r30, lo8({SDATA_D0})
    ldi r31, hi8({SDATA_D0})
    add r30, r24
    st Z, r24                  ; provable -> elided
    ldi r24, 1
    ldi r25, 0
    ret
"""

# one provable store, one store through an unowned heap pointer
MIXED_MODULE = """
fill:
    ldi r26, lo8({SDATA_D0})
    ldi r27, hi8({SDATA_D0})
    st X, r24                  ; provable -> elided
    ldi r26, 0x40              ; X -> unowned heap block
    ldi r27, 0x06
    st X, r24                  ; unknown -> check kept; faults at run
    ret
"""


def _load(system, source, name="mod", exports=("fill",), elide=True):
    src = _fmt(source, system.layout)
    return system.load_module(assemble(src, name), name,
                              exports=exports, elide=elide)


def _prove(source, layout, domain=0, entries=("fill",)):
    """Run the StoreProver over a bare assembled program (no SFI
    pipeline): classification is a property of code + layout alone."""
    prog = assemble(_fmt(source, layout, domain), "p")
    lo, hi = prog.extent()
    read = lambda i: prog.words.get(i, 0xFFFF)          # noqa: E731
    entry_addrs = [prog.symbols[e] for e in entries]
    cfg = RegionCFG.build(read, lo * 2, (hi + 1) * 2, name="p",
                          extra_leaders=entry_addrs)
    prover = StoreProver(layout, {}, domain)
    return prover.prove_cfg(cfg, entries=entry_addrs)


def _by_key(proofs, key):
    found = [p for p in proofs.values() if p.key == key]
    assert found, "no proof with key {!r} in {}".format(key, proofs)
    return found


# =====================================================================
# Prover classification
# =====================================================================
def test_prover_proves_page_pinned_fill_loop():
    layout = _layout()
    proofs = _prove(SPAN_MODULE, layout)
    (loop_store,) = _by_key(proofs, "st_xp")
    assert loop_store.kind == PROOF_IN_DOMAIN
    assert loop_store.rule == "sd-span-d0"
    span = layout.static_data_span(0)
    assert span[0] <= loop_store.lo <= loop_store.hi < span[1]


def test_prover_proves_masked_index_store():
    proofs = _prove(SPAN_MODULE, _layout())
    (masked,) = _by_key(proofs, "std_z")      # st Z == std Z+0
    assert masked.kind == PROOF_IN_DOMAIN
    # andi r24, 0x3F bounds the index to the first 64 span bytes
    assert masked.hi - masked.lo <= 0x3F


def test_prover_leaves_heap_pointer_unknown():
    proofs = _prove(MIXED_MODULE, _layout())
    st_x = _by_key(proofs, "st_x")
    kinds = {p.kind for p in st_x}
    assert kinds == {PROOF_IN_DOMAIN, PROOF_UNKNOWN}


def test_prover_flags_store_below_prot_bottom_as_faulting():
    src = """
fill:
    sts 0x0100, r24            ; below prot_bottom: always faults
    ret
"""
    proofs = _prove(src, _layout())
    (proof,) = _by_key(proofs, "sts")
    assert proof.kind == PROOF_FAULTING
    assert proof.rule == "below-prot-bottom"


def test_prover_flags_foreign_span_store_as_faulting():
    layout = _layout(domains=2)
    src = """
fill:
    ldi r26, lo8({SDATA_D1})   ; another domain's pinned span
    ldi r27, hi8({SDATA_D1})
    st X, r24
    ret
"""
    proofs = _prove(src, layout, domain=0)
    (proof,) = _by_key(proofs, "st_x")
    assert proof.kind == PROOF_FAULTING
    assert proof.rule == "foreign-span-d1"


def test_prover_does_not_prove_unreachable_code():
    src = """
fill:
    ret
dead:
    ldi r26, lo8({SDATA_D0})
    ldi r27, hi8({SDATA_D0})
    st X, r24                  ; unreachable != provably safe
    ret
"""
    proofs = _prove(src, _layout(), entries=("fill",))
    assert not [p for p in proofs.values() if p.key == "st_x"]


# =====================================================================
# Elided load: manifest, stats, lint, metrics
# =====================================================================
def test_elide_load_produces_manifest_and_stats():
    system = SfiSystem(layout=_layout())
    module = _load(system, SPAN_MODULE)
    manifest = module.manifest
    assert manifest is not None
    assert manifest.elided_checks == 2
    assert manifest.elided_cycles_saved == 2 * ELIDED_CHECK_CYCLES
    assert module.rewrite_stats["elided_stores"] == 2
    assert module.rewrite_stats["stores"] == 2
    assert {s.kind for s in manifest.sites} == {PROOF_IN_DOMAIN}


def test_elide_keeps_unprovable_checks():
    system = SfiSystem(layout=_layout())
    module = _load(system, MIXED_MODULE)
    assert module.rewrite_stats["stores"] == 2
    assert module.rewrite_stats["elided_stores"] == 1


def test_elide_without_provable_sites_degrades_to_normal_load():
    system = SfiSystem(layout=_layout())
    src = """
fill:
    ldi r26, 0x40
    ldi r27, 0x06
    st X, r24
    ret
"""
    module = _load(system, src)
    assert module.manifest is None
    assert module.rewrite_stats["elided_stores"] == 0


def test_elided_image_lints_clean():
    system = SfiSystem(layout=_layout())
    module = _load(system, SPAN_MODULE)
    assert module.manifest.elided_checks == 2
    _model, report = lint_system(system)
    assert not report.diagnostics.has_errors
    assert "HL001" not in report.diagnostics.codes()


def test_elision_publishes_metrics_counters():
    system = SfiSystem(layout=_layout())
    registry = system.machine.attach_metrics()
    module = _load(system, SPAN_MODULE)
    checks = registry.counter("elided_checks", module="mod")
    saved = registry.counter("elided_cycles_saved", module="mod")
    assert checks.value == module.manifest.elided_checks == 2
    assert saved.value == module.manifest.elided_cycles_saved


# =====================================================================
# Stale / forged manifests are rejected
# =====================================================================
def test_stale_manifest_rejected_and_raw_stores_revert():
    system = SfiSystem(layout=_layout())
    module = _load(system, SPAN_MODULE)
    mem = system.machine.memory
    # patch the image after admission: flip the ldi immediate's low bit
    idx = module.start // 2
    mem.write_flash_word(idx, mem.read_flash_word(idx) ^ 0x0001)
    system.machine.core.invalidate_decode_cache()
    _model, report = lint_system(system)
    codes = report.diagnostics.codes()
    assert "HL014" in codes            # manifest no longer binds
    assert "HL001" in codes            # elided raw stores revert
    assert report.diagnostics.has_errors


def test_verifier_admits_manifest_and_rejects_checksum_mismatch():
    system = SfiSystem(layout=_layout())
    module = _load(system, SPAN_MODULE)
    mem = system.machine.memory
    words = [mem.read_flash_word(i) for i in range(module.end // 2)]
    report = system.verifier.verify(words, module.start, module.end,
                                    manifest=module.manifest)
    assert report.elided_stores == 2
    stale = dataclasses.replace(module.manifest,
                                checksum=module.manifest.checksum ^ 1)
    with pytest.raises(VerifyError) as err:
        system.verifier.verify(words, module.start, module.end,
                               manifest=stale)
    assert err.value.rule == "HL014"


def test_verifier_rejects_raw_store_without_manifest():
    system = SfiSystem(layout=_layout())
    module = _load(system, SPAN_MODULE)
    mem = system.machine.memory
    words = [mem.read_flash_word(i) for i in range(module.end // 2)]
    with pytest.raises(VerifyError):
        system.verifier.verify(words, module.start, module.end)


def test_forged_manifest_site_is_rejected():
    system = SfiSystem(layout=_layout())
    module = _load(system, SPAN_MODULE)
    manifest = module.manifest
    read = system.machine.memory.read_flash_word
    syms = system.runtime.symbols
    assert verify_manifest(read, system.layout, syms, manifest) == []
    moved = dataclasses.replace(
        manifest, sites=[dataclasses.replace(s, pc=s.pc + 2)
                         for s in manifest.sites])
    assert verify_manifest(read, system.layout, syms, moved)
    lying = dataclasses.replace(
        manifest, sites=[dataclasses.replace(s, kind=PROOF_UNKNOWN)
                         for s in manifest.sites])
    problems = verify_manifest(read, system.layout, syms, lying)
    assert any("non-elidable" in msg for msg, _addr in problems)


def test_manifest_json_roundtrip_and_schema_gate():
    system = SfiSystem(layout=_layout())
    module = _load(system, SPAN_MODULE)
    manifest = module.manifest
    again = ElisionManifest.from_dict(json.loads(manifest.to_json()))
    assert again == manifest
    bumped = json.loads(manifest.to_json())
    bumped["schema"] = 99
    with pytest.raises(ValueError):
        ElisionManifest.from_dict(bumped)


def test_build_manifest_checksum_matches_installed_image():
    system = SfiSystem(layout=_layout())
    module = _load(system, SPAN_MODULE)
    read = system.machine.memory.read_flash_word
    assert module.manifest.checksum == image_checksum(
        read, module.start, module.end)


# =====================================================================
# Differential: elision changes cycle counts only
# =====================================================================
def _run(source, elide):
    layout = _layout()
    system = SfiSystem(layout=layout)
    _load(system, source, elide=elide)
    result, cycles = system.call_export("mod", "fill")
    span = layout.static_data_span(0)
    contents = bytes(system.machine.read_bytes(span[0], span[1] - span[0]))
    return result, cycles, contents


def test_elision_preserves_results_and_saves_cycles():
    checked = _run(SPAN_MODULE, elide=False)
    elided = _run(SPAN_MODULE, elide=True)
    assert checked[0] == elided[0]          # result
    assert checked[2] == elided[2]          # span contents
    assert elided[1] < checked[1]           # strictly fewer cycles


def test_kept_check_still_faults_in_elided_build():
    for elide in (False, True):
        system = SfiSystem(layout=_layout())
        _load(system, MIXED_MODULE, elide=elide)
        with pytest.raises(MemMapFault):
            system.call_export("mod", "fill")
