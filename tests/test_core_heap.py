"""Protected heap: allocation, ownership rules, and allocator/memmap
consistency under random operation sequences (hypothesis state machine
style, hand-rolled)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.encoding import TRUSTED_DOMAIN
from repro.core.faults import OwnershipFault
from repro.core.heap import HarborHeap, HeapError
from repro.core.memmap import MemMapConfig, MemoryMap


def make_heap(start=0x200, end=0xC00):
    mm = MemoryMap(MemMapConfig(0x200, 0xCFF, 8, "multi"))
    return HarborHeap(mm, start, end)


# ---------------------------------------------------------------------
# basics
# ---------------------------------------------------------------------
def test_malloc_returns_block_aligned():
    h = make_heap()
    p = h.malloc(10, 0)
    assert p is not None
    assert p % 8 == 0
    assert h.owner_of(p) == 0
    assert h.allocation_size(p) == 16  # rounded up


def test_malloc_marks_whole_segment():
    h = make_heap()
    p = h.malloc(30, 2)
    for off in range(0, 32, 8):
        assert h.owner_of(p + off) == 2
    assert h.memmap.segment_length(p) == 4


def test_malloc_zero_and_one_byte():
    h = make_heap()
    assert h.allocation_size(h.malloc(0, 0)) == 8
    assert h.allocation_size(h.malloc(1, 0)) == 8


def test_out_of_memory_returns_none():
    h = make_heap(0x200, 0x210)   # 16-byte heap
    assert h.malloc(8, 0) is not None
    assert h.malloc(8, 0) is not None
    assert h.malloc(8, 0) is None
    assert h.stats["failed"] == 1


def test_free_returns_memory():
    h = make_heap()
    p = h.malloc(64, 1)
    before = h.free_bytes
    assert h.free(p, 1) == 64
    assert h.free_bytes == before + 64
    assert h.owner_of(p) == TRUSTED_DOMAIN


def test_free_coalesces():
    h = make_heap()
    a = h.malloc(8, 0)
    b = h.malloc(8, 0)
    c = h.malloc(8, 0)
    h.free(a, 0)
    h.free(c, 0)
    h.free(b, 0)
    assert len(h.free_list) == 1
    assert h.free_bytes == 0xC00 - 0x200


# ---------------------------------------------------------------------
# ownership enforcement (paper §2.4)
# ---------------------------------------------------------------------
def test_only_owner_may_free():
    h = make_heap()
    p = h.malloc(16, 1)
    with pytest.raises(OwnershipFault):
        h.free(p, 2)
    h.free(p, 1)


def test_trusted_may_free_anything():
    h = make_heap()
    p = h.malloc(16, 1)
    h.free(p, TRUSTED_DOMAIN)


def test_only_owner_may_change_own():
    h = make_heap()
    p = h.malloc(16, 1)
    with pytest.raises(OwnershipFault):
        h.change_own(p, 3, 2)
    h.change_own(p, 3, 1)
    assert h.owner_of(p) == 3
    # and now domain 1 lost its rights
    with pytest.raises(OwnershipFault):
        h.free(p, 1)
    h.free(p, 3)


def test_double_free_rejected():
    h = make_heap()
    p = h.malloc(16, 0)
    h.free(p, 0)
    with pytest.raises(HeapError):
        h.free(p, 0)


def test_free_of_interior_pointer_rejected():
    h = make_heap()
    p = h.malloc(32, 0)
    with pytest.raises(HeapError):
        h.free(p + 8, 0)


def test_free_outside_heap_rejected():
    h = make_heap()
    with pytest.raises(HeapError):
        h.free(0x100, 0)
    with pytest.raises(HeapError):
        h.change_own(0xC08, 1, 0)


def test_change_own_transfers_message_payload():
    """The SOS zero-copy idiom: producer allocates, transfers to
    consumer, consumer frees."""
    h = make_heap()
    p = h.malloc(24, 0)
    h.change_own(p, 1, 0)
    assert h.owner_of(p) == 1
    h.free(p, 1)


# ---------------------------------------------------------------------
# invariants under random workloads
# ---------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["malloc", "free", "chown"]),
                          st.integers(1, 120), st.integers(0, 6)),
                max_size=60))
def test_property_heap_memmap_consistency(ops):
    h = make_heap()
    live = []  # (addr, owner)
    for op, size, dom in ops:
        if op == "malloc":
            p = h.malloc(size, dom)
            if p is not None:
                live.append((p, dom))
        elif op == "free" and live:
            addr, owner = live.pop(size % len(live))
            h.free(addr, owner)
        elif op == "chown" and live:
            i = size % len(live)
            addr, owner = live[i]
            h.change_own(addr, dom, owner)
            live[i] = (addr, dom)
        h.check_invariants()
    # every live allocation is still owned correctly and disjoint
    seen_blocks = set()
    for addr, owner in live:
        assert h.owner_of(addr) == owner
        length = h.memmap.segment_length(addr)
        first = h.memmap.config.block_of(addr)
        blocks = set(range(first, first + length))
        assert not blocks & seen_blocks, "overlapping allocations"
        seen_blocks |= blocks


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(1, 64), min_size=1, max_size=40))
def test_property_alloc_free_all_restores_heap(sizes):
    h = make_heap()
    total = h.free_bytes
    ptrs = [h.malloc(s, 0) for s in sizes]
    for p in ptrs:
        if p is not None:
            h.free(p, 0)
    assert h.free_bytes == total
    assert len(h.free_list) == 1
    h.check_invariants()


@given(st.integers(1, 200))
def test_property_allocation_size_covers_request(nbytes):
    h = make_heap()
    p = h.malloc(nbytes, 0)
    assert h.allocation_size(p) >= nbytes


def test_stats_counted():
    h = make_heap()
    p = h.malloc(8, 0)
    h.change_own(p, 1, 0)
    h.free(p, 1)
    assert h.stats["malloc"] == 1
    assert h.stats["change_own"] == 1
    assert h.stats["free"] == 1


def test_construction_validation():
    mm = MemoryMap(MemMapConfig(0x200, 0xCFF, 8, "multi"))
    with pytest.raises(ValueError):
        HarborHeap(mm, 0x201, 0xC00)   # misaligned
    with pytest.raises(ValueError):
        HarborHeap(mm, 0x100, 0xC00)   # outside protected region
