"""UmpuMachine integration: whole programs under hardware protection."""

import pytest

from repro.asm import assemble
from repro.core.faults import (
    ConfigFault,
    JumpTableFault,
    MemMapFault,
    StackBoundFault,
)
from repro.core.encoding import TRUSTED_DOMAIN
from repro.sim import Machine
from repro.umpu import HarborLayout, UmpuMachine


LAYOUT = HarborLayout()

MODULE_SRC = """
store_own:                  ; r25:r24 = address, r22 = value
    movw r26, r24
    st X, r22
    ret
reader:                     ; r25:r24 = address -> r24 = byte
    movw r26, r24
    ld r24, X
    ret
pusher:                     ; push/pop pair (stack traffic)
    push r16
    ldi r16, 1
    pop r16
    ret
sp_hijack:                  ; point SP into a foreign domain's heap, push
    ldi r16, 0x00
    out SPL, r16
    ldi r16, 0x05
    out SPH, r16
    push r16
    ret
reg_poke:                   ; try to write a protection register
    ldi r16, 0xFF
    out 0x22, r16           ; mem_prot_bot low
    ret
.org {jt1:#x}
    jmp remote_noop
.org 0x3000
remote_noop:
    ret
caller:
    call {jt1:#x}
    ret
""".format(jt1=LAYOUT.jt_base + 1 * 512)


@pytest.fixture
def machine():
    m = UmpuMachine(assemble(MODULE_SRC, "umpu_int"), layout=LAYOUT)
    m.memmap.set_segment(0x0400, 32, 0)
    m.memmap.set_segment(0x0500, 32, 1)
    m.tracker.register_code_region(0, 0, LAYOUT.jt_base)
    m.tracker.register_code_region(1, 0x3000, 0x3100)
    return m


def test_owned_store_succeeds(machine):
    machine.enter_domain(0)
    machine.call("store_own", 0x0400, ("u8", 0x5A))
    assert machine.memory.read_data(0x0400) == 0x5A


def test_foreign_store_faults_and_memory_intact(machine):
    machine.enter_domain(0)
    with pytest.raises(MemMapFault):
        machine.call("store_own", 0x0500, ("u8", 0x66))
    assert machine.memory.read_data(0x0500) == 0


def test_free_memory_protected(machine):
    machine.enter_domain(0)
    with pytest.raises(MemMapFault):
        machine.call("store_own", 0x0800, ("u8", 1))


def test_reads_unrestricted(machine):
    machine.memory.write_data(0x0500, 0x77)
    machine.enter_domain(0)
    machine.call("reader", 0x0500)
    assert machine.result8() == 0x77


def test_stack_traffic_allowed(machine):
    machine.enter_domain(0)
    machine.call("pusher")


def test_store_above_stack_bound_faults(machine):
    machine.enter_domain(0, stack_bound=0x0F00)
    with pytest.raises(StackBoundFault):
        machine.call("store_own", 0x0F01, ("u8", 1))


def test_sp_hijack_into_heap_caught(machine):
    """Repointing SP into another domain's heap and pushing is caught by
    the MMC checking pushes."""
    machine.enter_domain(0)
    with pytest.raises(MemMapFault):
        machine.call("sp_hijack")


def test_protection_register_write_by_module_faults(machine):
    machine.enter_domain(0)
    with pytest.raises(ConfigFault):
        machine.call("reg_poke")


def test_trusted_can_configure(machine):
    machine.enter_trusted()
    machine.call("reg_poke")  # same code, trusted domain: allowed
    assert machine.regs.mem_prot_bot & 0xFF == 0xFF


def test_cross_domain_call_through_jt(machine):
    machine.enter_trusted()
    machine.call("caller")
    assert machine.tracker.cross_calls == 1
    assert machine.tracker.cross_returns == 1
    assert machine.regs.cur_domain == TRUSTED_DOMAIN
    assert machine.regs.safe_stack_ptr == LAYOUT.safe_stack_base


def test_cross_domain_call_sets_callee_domain(machine):
    """While inside the callee, cur_domain is the callee's id: give the
    callee a store and watch it be attributed."""
    src = MODULE_SRC.replace(
        "remote_noop:\n    ret",
        "remote_noop:\n"
        "    ldi r26, 0x00\n"
        "    ldi r27, 0x05\n"
        "    ldi r16, 0x21\n"
        "    st X, r16\n"
        "    ret")
    m = UmpuMachine(assemble(src, "umpu_int2"), layout=LAYOUT)
    m.memmap.set_segment(0x0500, 32, 1)
    m.tracker.register_code_region(1, 0x3000, 0x3100)
    m.enter_trusted()
    m.call("caller")
    assert m.memory.read_data(0x0500) == 0x21  # domain 1 owned it


def test_direct_call_into_foreign_code_faults(machine):
    """A module calling another module's function directly (bypassing
    the jump table) is an escape and faults."""
    src = MODULE_SRC + """
escape:
    call 0x3000
    ret
"""
    m = UmpuMachine(assemble(src, "umpu_int3"), layout=LAYOUT)
    m.tracker.register_code_region(0, 0, 0x3000)
    m.enter_domain(0)
    with pytest.raises(JumpTableFault):
        m.call("escape")


def test_isa_compatibility_same_binary_runs_unprotected():
    """The paper's compatibility claim: the same image runs on a stock
    AVR (Machine) and on UMPU with protection disabled, with identical
    results and cycle counts."""
    src = """
    work:
        ldi r24, 0
        ldi r22, 10
    loop:
        add r24, r22
        dec r22
        brne loop
        ret
    """
    plain = Machine(assemble(src))
    plain_cycles = plain.call("work")
    umpu = UmpuMachine(assemble(src))  # no layout: units disabled
    umpu_cycles = umpu.call("work")
    assert plain.result8() == umpu.result8() == 55
    assert plain_cycles == umpu_cycles


def test_mmc_stall_is_exactly_one_cycle(machine):
    machine.enter_domain(0)
    protected = machine.call("store_own", 0x0400, ("u8", 1))
    with machine.protection_disabled():
        machine.reset()
        baseline = machine.call("store_own", 0x0400, ("u8", 1))
    assert protected - baseline == 1


def test_safe_stack_holds_return_addresses(machine):
    """Return addresses live in the safe-stack region, not at SP."""
    machine.enter_trusted()
    tracer = machine.attach_tracer()
    machine.call("pusher")
    ret_pushes = [e for e in tracer.events
                  if e.kind.name == "RET_PUSH"]
    assert ret_pushes, "no return-address traffic seen"
    # redirected writes actually landed in the safe-stack region: the
    # final safe_stack_ptr returned to base (balanced), and the bytes
    # below it hold the sentinel return address
    assert machine.regs.safe_stack_ptr == LAYOUT.safe_stack_base
