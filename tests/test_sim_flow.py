"""Control flow: branches, skips, calls/returns; cycle accounting."""

import pytest

from repro.asm import assemble
from repro.sim import BadOpcode, CycleLimitExceeded, Machine


def machine(src):
    return Machine(assemble(src))


# ---------------------------------------------------------------------
# jumps and branches
# ---------------------------------------------------------------------
def test_rjmp_and_jmp():
    m = machine("""
        rjmp step2
        ldi r16, 1          ; skipped
    step2:
        jmp step3
        ldi r16, 2          ; skipped
    step3:
        ldi r17, 3
        break
    """)
    m.run()
    assert m.core.reg(16) == 0
    assert m.core.reg(17) == 3


def test_ijmp():
    m = machine("""
        ldi r30, pm_lo8(target)
        ldi r31, pm_hi8(target)
        ijmp
        ldi r16, 1
    target:
        ldi r17, 9
        break
    """)
    m.run()
    assert m.core.reg(16) == 0
    assert m.core.reg(17) == 9


def test_branch_taken_and_not_taken():
    m = machine("""
        ldi r16, 1
        dec r16             ; Z set
        breq taken
        ldi r17, 1          ; skipped
    taken:
        dec r16             ; r16 = 0xFF, Z clear
        breq not_taken
        ldi r18, 2
    not_taken:
        break
    """)
    m.run()
    assert m.core.reg(17) == 0
    assert m.core.reg(18) == 2


def test_loop_counts():
    m = machine("""
        ldi r16, 5
        ldi r17, 0
    loop:
        inc r17
        dec r16
        brne loop
        break
    """)
    m.run()
    assert m.core.reg(17) == 5


# ---------------------------------------------------------------------
# skips
# ---------------------------------------------------------------------
def test_cpse_skips_when_equal():
    m = machine("""
        ldi r16, 5
        ldi r17, 5
        cpse r16, r17
        ldi r18, 1          ; skipped
        ldi r19, 2
        break
    """)
    m.run()
    assert m.core.reg(18) == 0
    assert m.core.reg(19) == 2


def test_cpse_skips_32bit_instruction():
    m = machine("""
        ldi r16, 5
        ldi r17, 5
        cpse r16, r17
        call sub            ; 2-word instruction skipped whole
        break
    sub:
        ldi r20, 0xEE
        ret
    """)
    m.run()
    assert m.core.reg(20) == 0


def test_sbrc_sbrs():
    m = machine("""
        ldi r16, 0b00000100
        sbrs r16, 2         ; bit set -> skipped
        ldi r17, 1
        sbrc r16, 2         ; bit set -> NOT skipped
        ldi r18, 1
        sbrc r16, 0         ; bit clear -> skipped
        ldi r19, 1
        break
    """)
    m.run()
    assert m.core.reg(17) == 0
    assert m.core.reg(18) == 1
    assert m.core.reg(19) == 0


def test_sbic_sbis():
    m = machine("""
        sbi 0x10, 1
        sbic 0x10, 1        ; bit set -> NOT skipped
        ldi r16, 1
        sbis 0x10, 1        ; bit set -> skipped
        ldi r17, 1
        sbic 0x10, 0        ; bit clear -> skipped
        ldi r18, 1
        break
    """)
    m.run()
    assert m.core.reg(16) == 1
    assert m.core.reg(17) == 0
    assert m.core.reg(18) == 0


# ---------------------------------------------------------------------
# calls and returns
# ---------------------------------------------------------------------
def test_call_ret():
    m = machine("""
        call fn
        ldi r17, 2
        break
    fn:
        ldi r16, 1
        ret
    """)
    m.run()
    assert m.core.reg(16) == 1
    assert m.core.reg(17) == 2
    assert m.memory.sp == m.geometry.ramend


def test_rcall_icall_nested():
    m = machine("""
        rcall a
        break
    a:
        ldi r30, pm_lo8(b)
        ldi r31, pm_hi8(b)
        icall
        inc r16
        ret
    b:
        ldi r16, 10
        ret
    """)
    m.run()
    assert m.core.reg(16) == 11


def test_recursion():
    # r24 = fib-ish counter: count down recursively, r17 counts frames
    m = machine("""
        ldi r24, 6
        call recurse
        break
    recurse:
        inc r17
        subi r24, 1
        breq done
        call recurse
    done:
        ret
    """)
    m.run(max_cycles=10000)
    assert m.core.reg(17) == 6
    assert m.memory.sp == m.geometry.ramend


def test_machine_call_abi():
    m = machine("""
    add16:                  ; (r25:r24, r23:r22) -> r25:r24
        add r24, r22
        adc r25, r23
        ret
    """)
    cycles = m.call("add16", 0x1234, 0x0111)
    assert m.result16() == 0x1345
    assert cycles == 1 + 1 + 4  # add, adc, ret


# ---------------------------------------------------------------------
# cycle accounting
# ---------------------------------------------------------------------
@pytest.mark.parametrize("body,cycles", [
    ("    nop\n", 1),
    ("    ldi r16, 1\n", 1),
    ("    add r16, r16\n", 1),
    ("    adiw r26, 1\n", 2),
    ("    ldi r26, 0\n    ldi r27, 2\n    st X, r0\n", 1 + 1 + 2),
    ("    lds r0, 0x200\n", 2),
    ("    push r0\n    pop r0\n", 4),
    ("    rjmp next\nnext:\n", 2),
    ("    jmp next\nnext:\n", 3),
    ("    in r16, 0x3F\n", 1),
    ("    sbi 0x10, 0\n", 2),
    ("    lpm r16, Z\n", 3),
])
def test_instruction_cycles(body, cycles):
    m = machine(body + "    break\n")
    m.run()
    assert m.core.cycles == cycles + 1  # + break


def test_branch_cycles_taken_vs_not():
    taken = machine("    sez\n    breq t\nt:\n    break\n")
    taken.run()
    not_taken = machine("    clz\n    breq t\nt:\n    break\n")
    not_taken.run()
    assert taken.core.cycles == not_taken.core.cycles + 1


def test_call_ret_cycles():
    m = machine("    call fn\n    break\nfn:\n    ret\n")
    m.run()
    assert m.core.cycles == 4 + 4 + 1


def test_skip_cycles():
    # skipping a 1-word instruction costs 2, a 2-word instruction 3
    m1 = machine("    cpse r0, r1\n    nop\n    break\n")
    m1.run()
    m2 = machine(
        "    cpse r0, r1\n    jmp far\n    break\nfar:\n    break\n")
    m2.run()
    assert m1.core.cycles == 2 + 1
    assert m2.core.cycles == 3 + 1


# ---------------------------------------------------------------------
# error paths
# ---------------------------------------------------------------------
def test_bad_opcode():
    m = Machine(assemble("    nop\n"))
    m.memory.write_flash_word(1, 0xFFFF)
    with pytest.raises(BadOpcode):
        m.run(max_cycles=10)


def test_cycle_limit():
    m = machine("loop:\n    rjmp loop\n")
    with pytest.raises(CycleLimitExceeded):
        m.run(max_cycles=100)


def test_reset_restores_state():
    m = machine("    ldi r16, 1\n    push r16\n    break\n")
    m.run()
    m.reset()
    assert m.core.pc == 0
    assert not m.core.halted
    assert m.memory.sp == m.geometry.ramend
    assert m.memory.sreg == 0


def test_decode_cache_invalidation():
    m = machine("    nop\n    break\n")
    m.run()
    # rewrite the nop into ldi r16, 7 and rerun
    m.memory.write_flash_word(0, 0xE007 | 0x0000)
    m.core.invalidate_decode_cache()
    m.reset()
    m.run()
    assert m.core.reg(16) == 7


def test_flash_write_invalidates_decode_cache_automatically():
    # same rewrite as above, but relying on the flash-write listener:
    # no manual invalidate_decode_cache() call
    m = machine("    nop\n    break\n")
    m.run()
    m.memory.write_flash_word(0, 0xE007)  # ldi r16, 7
    m.reset()
    m.run()
    assert m.core.reg(16) == 7


def test_flash_write_to_second_word_invalidates_whole_instruction():
    # patching the *operand* word of a 2-word instruction must drop the
    # cached decode anchored one word earlier
    m = machine("""
        jmp a
    a:
        ldi r16, 1
        break
    b:
        ldi r16, 2
        break
    """)
    m.run()
    assert m.core.reg(16) == 1
    m.memory.write_flash_word(1, m.program.symbol("b") // 2)
    m.reset()
    m.run()
    assert m.core.reg(16) == 2


def test_instr_size_at_prefers_decode_cache():
    # white-box: once an instruction is decoded, skip sizing must come
    # from the cache, not a fresh flash probe
    m = machine("""
        cpse r16, r17
        call sub
        break
    sub:
        ldi r20, 1
        ret
    """)
    m.core.pc = 1
    m.core._fetch()                      # prime the cache for the call
    assert m.core._instr_size_at(1) == 2
    m.memory.flash[1] = 0x0000           # corrupt raw flash *behind* the
    assert m.core._instr_size_at(1) == 2  # listener: cache still wins
    m.core.invalidate_decode_cache()
    assert m.core._instr_size_at(1) == 1  # uncached: probes flash


def test_skip_over_32bit_cycles_stable_across_iterations():
    # the cached-decode skip path must charge the same 3 cycles every
    # time around the loop (cold decode vs warm cache)
    m = machine("""
        ldi r24, 3
    loop:
        cpse r16, r16       ; always equal: skip the call
        call never
        dec r24
        brne loop
        break
    never:
        ldi r20, 0xEE
        ret
    """)
    sink = m.attach_trace()
    m.run()
    assert m.core.reg(20) == 0          # call never executed
    from repro.trace import TraceEventKind
    skips = [e.get("cycles") for e in sink.of(TraceEventKind.INSTR_RETIRE)
             if e.get("key") == "cpse"]
    assert skips == [3, 3, 3]           # skip over 2-word instr = 3 cycles


# ---------------------------------------------------------------------
# run() budget semantics
# ---------------------------------------------------------------------
def test_cycle_limit_checked_before_stepping():
    m = machine("    nop\n    nop\n    nop\n    break\n")
    with pytest.raises(CycleLimitExceeded) as exc:
        m.core.run(max_cycles=2)
    # exactly two 1-cycle nops ran; the third never started
    assert m.core.pc == 2
    assert m.core.cycles == 2
    assert exc.value.limit == 2
    assert exc.value.overshoot == 0


def test_cycle_limit_reports_overshoot():
    m = machine("loop:\n    rjmp loop\n")   # 2 cycles per iteration
    with pytest.raises(CycleLimitExceeded) as exc:
        m.run(max_cycles=3)
    assert exc.value.limit == 3
    assert exc.value.overshoot == 1         # last rjmp landed on 4
    assert "by 1 cycle" in str(exc.value)


def test_until_pc_reached_exactly_at_budget_succeeds():
    # until_pc wins over an exactly-exhausted budget: a call that
    # returns on its last allowed cycle is a success, not a runaway
    m = machine("    nop\n    nop\n    break\n")
    consumed = m.core.run(max_cycles=2, until_pc=2)
    assert consumed == 2
    assert m.core.pc == 2
