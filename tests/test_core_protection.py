"""Checker, domains, safe stack and control-flow manager (golden model)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.checker import CheckContext, WriteChecker
from repro.core.control_flow import CrossDomainManager, JumpTable
from repro.core.domains import Domain, DomainSet
from repro.core.encoding import TRUSTED_DOMAIN
from repro.core.faults import (
    JumpTableFault,
    MemMapFault,
    SafeStackOverflow,
    SafeStackUnderflow,
    StackBoundFault,
    UntrustedAccessFault,
)
from repro.core.memmap import MemMapConfig, MemoryMap
from repro.core.safe_stack import (
    CROSS_DOMAIN_FRAME_BYTES,
    SafeStack,
)


# ---------------------------------------------------------------------
# domains
# ---------------------------------------------------------------------
def test_domain_set_basics():
    ds = DomainSet()
    assert ds.trusted.did == TRUSTED_DOMAIN
    assert ds.trusted.trusted
    a = ds.create("app")
    b = ds.create()
    assert a.did == 0 and not a.trusted
    assert b.did == 1
    assert len(ds) == 3
    assert a.did in ds
    assert ds.user_domains() == [a, b]


def test_domain_exhaustion():
    ds = DomainSet(max_user_domains=2)
    ds.create()
    ds.create()
    with pytest.raises(ValueError):
        ds.create()


def test_domain_destroy_and_reuse():
    ds = DomainSet()
    a = ds.create()
    ds.destroy(a.did)
    assert a.did not in ds
    again = ds.create()
    assert again.did == a.did
    with pytest.raises(ValueError):
        ds.destroy(TRUSTED_DOMAIN)


def test_domain_str():
    assert "trusted" in str(Domain(TRUSTED_DOMAIN))
    assert "id=2" in str(Domain(2, "surge"))


# ---------------------------------------------------------------------
# write checker (the golden rule table)
# ---------------------------------------------------------------------
@pytest.fixture
def checker():
    memmap = MemoryMap(MemMapConfig(0x200, 0xCFF, 8, "multi"))
    memmap.set_segment(0x300, 16, 0)
    memmap.set_segment(0x310, 16, 1)
    ctx = CheckContext(memmap, cur_domain=0, stack_bound=0xF00)
    return WriteChecker(ctx)


def test_trusted_writes_anywhere(checker):
    checker.context.cur_domain = TRUSTED_DOMAIN
    for addr in (0x000, 0x100, 0x300, 0x310, 0xF80, 0xFFF):
        assert checker.check(addr) == "trusted"


def test_own_block_allowed(checker):
    assert checker.check(0x300) == "memmap"
    assert checker.check(0x30F) == "memmap"


def test_foreign_block_faults(checker):
    with pytest.raises(MemMapFault) as e:
        checker.check(0x310)
    assert e.value.owner == 1
    with pytest.raises(MemMapFault):
        checker.check(0x400)   # free = trusted-owned


def test_stack_window_allowed(checker):
    assert checker.check(0xD50) == "stack"
    assert checker.check(0xF00) == "stack"  # at the bound is still ours


def test_above_stack_bound_faults(checker):
    with pytest.raises(StackBoundFault):
        checker.check(0xF01)
    with pytest.raises(StackBoundFault):
        checker.check(0xFFF)


def test_below_protected_region_faults(checker):
    with pytest.raises(UntrustedAccessFault):
        checker.check(0x1FF)
    with pytest.raises(UntrustedAccessFault):
        checker.check(0x005)  # register file


def test_allowed_helper(checker):
    assert checker.allowed(0x300)
    assert not checker.allowed(0x310)


@given(st.integers(0, 0xFFF))
def test_property_exactly_one_rule_applies(addr):
    """For any address the checker either allows or raises exactly one
    typed fault — and trusted always passes."""
    memmap = MemoryMap(MemMapConfig(0x200, 0xCFF, 8, "multi"))
    memmap.set_segment(0x300, 64, 0)
    ctx = CheckContext(memmap, cur_domain=0, stack_bound=0xF00)
    wc = WriteChecker(ctx)
    assert wc.check(addr, TRUSTED_DOMAIN) == "trusted"
    try:
        rule = wc.check(addr, 0)
    except StackBoundFault:
        assert addr > 0xF00
    except MemMapFault:
        assert 0x200 <= addr <= 0xCFF
        assert not (0x300 <= addr < 0x340)
    except UntrustedAccessFault:
        assert addr < 0x200
    else:
        if rule == "memmap":
            assert 0x300 <= addr < 0x340
        elif rule == "stack":
            assert 0xCFF < addr <= 0xF00


# ---------------------------------------------------------------------
# safe stack
# ---------------------------------------------------------------------
def test_safe_stack_return_frames():
    ss = SafeStack(0xC00, 0xD00)
    ss.push_return(0x1234)
    ss.push_return(0x5678)
    assert ss.depth_bytes == 4
    assert ss.pop_return() == 0x5678
    assert ss.pop_return() == 0x1234
    assert ss.depth_bytes == 0


def test_safe_stack_cross_domain_frames():
    ss = SafeStack(0xC00, 0xD00)
    ss.push_cross_domain(3, 0xE80, 0x2222)
    assert ss.depth_bytes == CROSS_DOMAIN_FRAME_BYTES
    frame = ss.pop_cross_domain()
    assert frame.prev_domain == 3
    assert frame.prev_stack_bound == 0xE80
    assert frame.ret_addr == 0x2222


def test_safe_stack_mixed_frames_lifo():
    ss = SafeStack(0xC00, 0xD00)
    ss.push_cross_domain(1, 0xF00, 0x1000)
    ss.push_return(0xAAAA)
    assert ss.pop_return() == 0xAAAA
    assert ss.pop_cross_domain().prev_domain == 1


def test_safe_stack_overflow():
    ss = SafeStack(0xC00, 0xC04)
    ss.push_return(1)
    ss.push_return(2)
    with pytest.raises(SafeStackOverflow):
        ss.push_return(3)


def test_safe_stack_underflow():
    ss = SafeStack(0xC00, 0xD00)
    with pytest.raises(SafeStackUnderflow):
        ss.pop_return()


def test_safe_stack_reset():
    ss = SafeStack(0xC00, 0xD00)
    ss.push_return(1)
    ss.reset()
    assert ss.depth_bytes == 0


@given(st.lists(st.integers(0, 0xFFFF), max_size=50))
def test_property_safe_stack_is_lifo(values):
    ss = SafeStack(0, 4096)
    for v in values:
        ss.push_return(v)
    for v in reversed(values):
        assert ss.pop_return() == v


# ---------------------------------------------------------------------
# jump table geometry
# ---------------------------------------------------------------------
def test_jump_table_geometry():
    jt = JumpTable(base=0x1000, ndomains=8)
    assert jt.page_bytes == 512
    assert jt.end == 0x2000
    assert jt.total_flash_bytes == 4096
    assert jt.entry_addr(0, 0) == 0x1000
    assert jt.entry_addr(0, 127) == 0x1000 + 127 * 4
    assert jt.entry_addr(7, 0) == 0x1E00
    assert jt.contains(0x1000) and jt.contains(0x1FFC)
    assert not jt.contains(0x0FFF) and not jt.contains(0x2000)


def test_jump_table_classify():
    jt = JumpTable(base=0x1000, ndomains=4)
    assert jt.classify(0x1000) == (0, 0)
    assert jt.classify(0x1204) == (1, 1)
    with pytest.raises(JumpTableFault):
        jt.classify(0x0F00)          # below base
    with pytest.raises(JumpTableFault):
        jt.classify(0x1000 + 4 * 512)  # beyond upper bound
    with pytest.raises(JumpTableFault):
        jt.classify(0x1002)          # misaligned


def test_jump_table_entry_bounds():
    jt = JumpTable(base=0x1000, ndomains=2)
    with pytest.raises(ValueError):
        jt.entry_addr(0, 128)
    with pytest.raises(ValueError):
        jt.entry_addr(2, 0)


@given(st.integers(0, 7), st.integers(0, 127))
def test_property_classify_inverts_entry_addr(domain, index):
    jt = JumpTable(base=0x1000, ndomains=8)
    assert jt.classify(jt.entry_addr(domain, index)) == (domain, index)


# ---------------------------------------------------------------------
# cross-domain manager
# ---------------------------------------------------------------------
def manager():
    jt = JumpTable(base=0x1000, ndomains=8)
    ss = SafeStack(0xC00, 0xD00)
    return CrossDomainManager(jt, ss, initial_stack_bound=0xFFF)


def test_cross_domain_call_and_return():
    m = manager()
    callee = m.cross_domain_call(0x1000 + 2 * 512, ret_word_addr=0x80,
                                 sp=0xE00)
    assert callee == 2
    assert m.cur_domain == 2
    assert m.stack_bound == 0xE00
    assert m.nesting == 1
    frame = m.on_return()
    assert frame.prev_domain == TRUSTED_DOMAIN
    assert m.cur_domain == TRUSTED_DOMAIN
    assert m.stack_bound == 0xFFF
    assert m.nesting == 0


def test_chained_cross_domain_calls():
    """Domain A calls B which calls C (the paper's chaining case)."""
    m = manager()
    m.cross_domain_call(0x1000, 0x10, sp=0xF00)       # -> domain 0
    m.cross_domain_call(0x1200, 0x20, sp=0xE80)       # -> domain 1
    m.cross_domain_call(0x1400, 0x30, sp=0xE00)       # -> domain 2
    assert m.cur_domain == 2 and m.nesting == 3
    assert m.on_return().prev_domain == 1
    assert m.on_return().prev_domain == 0
    assert m.on_return().prev_domain == TRUSTED_DOMAIN
    assert m.stack_bound == 0xFFF


def test_local_calls_do_not_close_frames():
    m = manager()
    m.cross_domain_call(0x1000, 0x10, sp=0xF00)
    m.local_call()
    m.local_call()
    assert m.on_return() is None
    assert m.on_return() is None
    assert m.cur_domain == 0
    frame = m.on_return()
    assert frame is not None
    assert m.cur_domain == TRUSTED_DOMAIN


def test_return_with_no_frame_is_ordinary():
    m = manager()
    assert m.on_return() is None


def test_classify_call_confinement():
    m = manager()
    m.register_code_region(0, 0x4000, 0x5000)
    m.cross_domain_call(0x1000, 0, sp=0xF00)  # now in domain 0
    assert m.classify_call(0x4200) == "local"
    assert m.classify_call(0x1200) == "cross"
    with pytest.raises(JumpTableFault):
        m.classify_call(0x6000)
    with pytest.raises(JumpTableFault):
        m.classify_call(0x0100)  # the trusted kernel's code


def test_trusted_calls_anywhere():
    m = manager()
    assert m.classify_call(0x8000) == "local"


@given(st.lists(st.sampled_from(["xcall", "call", "ret"]), max_size=60))
def test_property_domain_tracking_is_balanced(script):
    """Random call/return interleavings never unbalance the tracker:
    after all frames close, the trusted domain and the original stack
    bound are restored."""
    m = manager()
    depth_model = []  # mirror: list of local-call depths
    domains = [TRUSTED_DOMAIN]
    for op in script:
        if op == "xcall":
            if m.nesting >= 7:
                continue
            target_dom = (domains[-1] + 1) % 7
            m.cross_domain_call(0x1000 + target_dom * 512, 0, sp=0xE00)
            depth_model.append(0)
            domains.append(target_dom)
        elif op == "call":
            m.local_call()
            if depth_model:
                depth_model[-1] += 1
        else:
            frame = m.on_return()
            if depth_model and depth_model[-1] > 0:
                depth_model[-1] -= 1
                assert frame is None
            elif depth_model:
                depth_model.pop()
                domains.pop()
                assert frame is not None
            else:
                assert frame is None
        assert m.cur_domain == domains[-1]
        assert m.nesting == len(depth_model)
    while depth_model:
        if depth_model[-1] > 0:
            depth_model[-1] -= 1
            assert m.on_return() is None
        else:
            depth_model.pop()
            domains.pop()
            assert m.on_return() is not None
    assert m.cur_domain == TRUSTED_DOMAIN
    assert m.stack_bound == 0xFFF
