"""SfiSystem end-to-end: load modules, cross-domain calls, faults."""

import pytest

from repro.asm import assemble
from repro.core.faults import (
    MemMapFault,
    OwnershipFault,
    StackBoundFault,
)
from repro.core.encoding import TRUSTED_DOMAIN
from repro.sfi import SfiSystem
from repro.sfi.verifier import VerifyError


@pytest.fixture
def system():
    return SfiSystem()


MODULE = """
.equ KERNEL_MALLOC = {KERNEL_MALLOC}
.equ KERNEL_FREE = {KERNEL_FREE}
.equ KERNEL_CHANGE_OWN = {KERNEL_CHANGE_OWN}

alloc_and_fill:             ; r24:25 = value -> r24:25 = buffer
    push r16
    push r17
    movw r16, r24
    ldi r24, 8
    ldi r25, 0
    call KERNEL_MALLOC
    cp r24, r1
    cpc r25, r1
    breq done
    movw r26, r24
    st X+, r16
    st X, r17
done:
    pop r17
    pop r16
    ret

poke:                       ; r24:25 = address, r22 = value
    movw r26, r24
    mov r18, r22
    st X, r18
    ret

give_away:                  ; r24:25 = buffer, r22 = new domain
    call KERNEL_CHANGE_OWN
    ret

release:                    ; r24:25 = buffer
    call KERNEL_FREE
    ret
"""


def load(system, name="mod"):
    src = MODULE.format(**{k: hex(v)
                           for k, v in system.kernel_symbols().items()})
    return system.load_module(
        assemble(src, name), name,
        exports=("alloc_and_fill", "poke", "give_away", "release"))


def test_module_loads_and_verifies(system):
    mod = load(system)
    assert mod.domain == 0
    assert set(mod.exports) == {"alloc_and_fill", "poke", "give_away",
                                "release"}
    assert mod.rewrite_stats["stores"] == 3


def test_kernel_malloc_attributed_to_caller(system):
    mod = load(system)
    ptr, _cycles = system.call_export("mod", "alloc_and_fill", 0xBEEF)
    assert ptr
    assert system.memmap.owner_of(ptr) == mod.domain
    assert system.machine.read_word(ptr) == 0xBEEF


def test_domain_state_restored_after_export(system):
    load(system)
    system.call_export("mod", "alloc_and_fill", 1)
    assert system.cur_domain == TRUSTED_DOMAIN
    ss = system.machine.read_word(system.layout.ss_ptr)
    assert ss == system.layout.safe_stack_base


def test_module_cannot_poke_trusted_memory(system):
    load(system)
    victim = system.malloc(8)
    with pytest.raises(MemMapFault):
        system.call_export("mod", "poke", victim, ("u8", 0x66))
    assert system.machine.memory.read_data(victim) == 0


def test_two_modules_isolated(system):
    load(system, "alice")
    load(system, "bob")
    pa, _ = system.call_export("alice", "alloc_and_fill", 0x1111)
    pb, _ = system.call_export("bob", "alloc_and_fill", 0x2222)
    assert system.memmap.owner_of(pa) == 0
    assert system.memmap.owner_of(pb) == 1
    # bob cannot poke alice's buffer
    with pytest.raises(MemMapFault):
        system.call_export("bob", "poke", pa, ("u8", 0x66))
    # alice still can
    system.call_export("alice", "poke", pa, ("u8", 0x77))
    assert system.machine.memory.read_data(pa) == 0x77


def test_change_own_transfers_between_modules(system):
    load(system, "alice")
    load(system, "bob")
    pa, _ = system.call_export("alice", "alloc_and_fill", 0x1234)
    system.call_export("alice", "give_away", pa, ("u8", 1))
    assert system.memmap.owner_of(pa) == 1
    system.call_export("bob", "poke", pa, ("u8", 0x55))  # now allowed
    with pytest.raises(MemMapFault):
        system.call_export("alice", "poke", pa, ("u8", 0x66))


def test_module_frees_own_buffer(system):
    load(system)
    ptr, _ = system.call_export("mod", "alloc_and_fill", 1)
    system.call_export("mod", "release", ptr)
    assert system.memmap.owner_of(ptr) == TRUSTED_DOMAIN


def test_module_cannot_free_foreign_buffer(system):
    load(system, "alice")
    load(system, "bob")
    pa, _ = system.call_export("alice", "alloc_and_fill", 1)
    with pytest.raises(OwnershipFault):
        system.call_export("bob", "release", pa)


def test_unsafe_module_rejected_at_load(system):
    # craft a program the rewriter passes but the verifier must reject:
    # simplest: bypass the rewriter entirely by loading raw stores is
    # impossible through load_module, so check the rewriter/verifier
    # pair rejects a module with a computed jump
    src = "f:\n    ijmp\n    ret\n"
    from repro.sfi.rewriter import RewriteError
    with pytest.raises((RewriteError, VerifyError)):
        system.load_module(assemble(src, "evil"), "evil", exports=("f",))


def test_verifier_guards_against_malicious_rewriter(system):
    """Simulate a compromised rewriter: install a module image with a
    raw store; the system-level verifier must reject it."""
    raw = assemble(".org {}\nf:\n    st X, r5\n    ret\n".format(
        system._next_load), "evil")
    with pytest.raises(VerifyError):
        system.verifier.verify(raw, system._next_load,
                               system._next_load + 4)


def test_stack_bound_protects_caller_frames(system):
    """A module writing above its stack bound (the kernel's frames)
    faults."""
    src = """
    f:
        ldi r26, 0xF0
        ldi r27, 0x0F       ; 0x0FF0: deep in the caller's stack
        ldi r18, 0x66
        st X, r18
        ret
    """
    system.load_module(assemble(src, "stackmod"), "stackmod",
                       exports=("f",))
    # give the kernel some stack frames below RAMEND before dispatching
    system.machine.memory.sp = 0x0F00
    with pytest.raises(StackBoundFault):
        system.call_export("stackmod", "f")


def test_module_own_stack_frames_writable(system):
    """Locals in the module's own stack frame are fine.

    (Note: the write targets SP+1, i.e. allocated frame bytes — writing
    at the free slot [SP] itself would collide with the check stub's own
    call frame, an inherent artifact of non-inlined SFI checks; compiled
    code never writes the free slot.)"""
    src = """
    f:
        push r16
        push r17            ; ordinary stack traffic
        in r26, SPL
        in r27, SPH
        adiw r26, 1         ; last allocated frame byte
        ldi r18, 0x42
        st X, r18
        pop r17
        pop r16
        ret
    """
    system.load_module(assemble(src, "stackmod2"), "stackmod2",
                       exports=("f",))
    system.call_export("stackmod2", "f")


def test_many_modules_until_domains_exhausted(system):
    src = "f:\n    nop\n    ret\n"
    for i in range(7):
        system.load_module(assemble(src, "m%d" % i), "m%d" % i,
                           exports=("f",))
    with pytest.raises(ValueError):
        system.load_module(assemble(src, "m7"), "m7", exports=("f",))


def test_modules_loaded_at_distinct_regions(system):
    a = load(system, "alice")
    b = load(system, "bob")
    assert a.end <= b.start


def test_kernel_exports_published(system):
    syms = system.kernel_symbols()
    assert {"KERNEL_MALLOC", "KERNEL_FREE", "KERNEL_CHANGE_OWN",
            "KERNEL_NOOP"} <= set(syms)
    jt = system.jump_table
    for value in syms.values():
        assert jt.contains(value)


def test_module_exports_published_for_later_modules(system):
    load(system, "alice")
    syms = system.kernel_symbols()
    assert "JT_ALICE_POKE" in syms
    # a second module can call alice through her jump table entry
    src = """
    .equ TARGET = {JT_ALICE_ALLOC_AND_FILL}
    f:
        ldi r24, 0x34
        ldi r25, 0x12
        call TARGET
        ret
    """.format(**{k: hex(v) for k, v in syms.items()})
    system.load_module(assemble(src, "carol"), "carol", exports=("f",))
    ptr, _ = system.call_export("carol", "f")
    assert ptr
    # the buffer belongs to ALICE (she called malloc)
    assert system.memmap.owner_of(ptr) == 0
