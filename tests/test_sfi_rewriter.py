"""Binary rewriter: transformation rules, relocation, relaxation."""

import pytest

from repro.asm import Assembler, assemble, disassemble
from repro.sfi.layout import SfiLayout
from repro.sfi.rewriter import RewriteError, Rewriter
from repro.sfi.runtime_asm import build_runtime

LAYOUT = SfiLayout()
RUNTIME = build_runtime(LAYOUT)
ORIGIN = LAYOUT.jt_end


@pytest.fixture
def rw():
    return Rewriter(RUNTIME.symbols, LAYOUT)


def rewrite(rw, src, exports=(), entries=(), origin=ORIGIN):
    return rw.rewrite(assemble(src, "mod"), origin, exports=exports,
                      entries=entries)


def keys_of(result):
    return [l.instr.key for l in disassemble(result.program)
            if l.instr is not None]


# ---------------------------------------------------------------------
# store rewriting
# ---------------------------------------------------------------------
def test_st_x_becomes_stub_call(rw):
    res = rewrite(rw, "f:\n    st X, r5\n    ret\n", exports=("f",))
    keys = keys_of(res)
    assert "st_x" not in keys
    assert keys.count("call") >= 2  # stub call + prologue etc.
    # value marshaled through r18
    assert "mov" in keys and "push" in keys and "pop" in keys
    texts = [l.text for l in disassemble(res.program)]
    stub = RUNTIME.symbol("hb_st_x")
    assert any("0x{:04x}".format(stub) in t for t in texts)


def test_st_with_value_already_in_r18_skips_marshal(rw):
    res = rewrite(rw, "f:\n    st X, r18\n    ret\n", exports=("f",))
    res2 = rewrite(rw, "f:\n    st X, r5\n    ret\n", exports=("f",))
    assert res.size_bytes < res2.size_bytes


@pytest.mark.parametrize("src,stub", [
    ("st X, r5", "hb_st_x"),
    ("st X+, r5", "hb_st_x_plus"),
    ("st -X, r5", "hb_st_x_dec"),
    ("st Y+, r5", "hb_st_y_plus"),
    ("st -Y, r5", "hb_st_y_dec"),
    ("std Y+7, r5", "hb_st_y_q"),
    ("st Y, r5", "hb_st_y_q"),
    ("st Z+, r5", "hb_st_z_plus"),
    ("st -Z, r5", "hb_st_z_dec"),
    ("std Z+9, r5", "hb_st_z_q"),
    ("sts 0x0400, r5", "hb_st_sts"),
])
def test_every_store_mode_routed_to_its_stub(rw, src, stub):
    res = rewrite(rw, "f:\n    {}\n    ret\n".format(src), exports=("f",))
    target = RUNTIME.symbol(stub) // 2
    calls = [l.instr for l in disassemble(res.program)
             if l.instr is not None and l.instr.key == "call"]
    assert any(i.operands[0] == target for i in calls), stub


def test_std_displacement_marshaled_in_r19(rw):
    res = rewrite(rw, "f:\n    std Y+13, r5\n    ret\n", exports=("f",))
    ldis = [l.instr for l in disassemble(res.program)
            if l.instr is not None and l.instr.key == "ldi"]
    assert any(i.operands == (19, 13) for i in ldis)


def test_sts_address_marshaled_in_x(rw):
    res = rewrite(rw, "f:\n    sts 0x0456, r5\n    ret\n", exports=("f",))
    ldis = [l.instr for l in disassemble(res.program)
            if l.instr is not None and l.instr.key == "ldi"]
    assert any(i.operands == (26, 0x56) for i in ldis)
    assert any(i.operands == (27, 0x04) for i in ldis)


# ---------------------------------------------------------------------
# control flow rewriting
# ---------------------------------------------------------------------
def test_prologue_epilogue_inserted(rw):
    res = rewrite(rw, "f:\n    nop\n    ret\n", exports=("f",))
    calls = [l.instr.operands[0] * 2 for l in disassemble(res.program)
             if l.instr is not None and l.instr.key == "call"]
    assert RUNTIME.symbol("hb_save_ret") in calls
    assert RUNTIME.symbol("hb_restore_ret") in calls
    assert res.stats["prologues"] == 1
    assert res.stats["rets"] == 1


def test_export_address_points_at_prologue(rw):
    res = rewrite(rw, "f:\n    nop\n    ret\n", exports=("f",))
    entry = res.exports["f"]
    line = next(l for l in disassemble(res.program)
                if l.byte_addr == entry)
    assert line.instr.key == "call"
    assert line.instr.operands[0] * 2 == RUNTIME.symbol("hb_save_ret")


def test_internal_call_gets_callee_prologue(rw):
    res = rewrite(rw, """
    f:
        call g
        ret
    g:
        nop
        ret
    """, exports=("f",))
    assert res.stats["prologues"] == 2  # f (export) + g (call target)


def test_cross_domain_call_sequence(rw):
    jt_entry = LAYOUT.jt_base + 512  # domain 1 entry 0
    res = rewrite(rw, "f:\n    call {}\n    ret\n".format(jt_entry),
                  exports=("f",))
    assert res.stats["cross_calls"] == 1
    # push Z, ldi Z with the word address, call stub, pop Z
    ldis = [l.instr for l in disassemble(res.program)
            if l.instr is not None and l.instr.key == "ldi"]
    word = jt_entry // 2
    assert any(i.operands == (30, word & 0xFF) for i in ldis)
    assert any(i.operands == (31, word >> 8) for i in ldis)


def test_icall_becomes_xdom_call(rw):
    res = rewrite(rw, "f:\n    icall\n    ret\n", exports=("f",))
    assert res.stats["icalls"] == 1
    assert "icall" not in keys_of(res)


def test_relative_jumps_relocated(rw):
    res = rewrite(rw, """
    f:
        ldi r16, 4
    loop:
        st X+, r16
        dec r16
        brne loop
        ret
    """, exports=("f",))
    # the branch target must still be the rewritten loop head
    new_loop = res.addr_map[assemble("""
    f:
        ldi r16, 4
    loop:
        st X+, r16
        dec r16
        brne loop
        ret
    """, "mod").symbol("loop")]
    branches = [(l.byte_addr, l.instr) for l in disassemble(res.program)
                if l.instr is not None and l.instr.key == "brbc"]
    assert len(branches) == 1
    addr, instr = branches[0]
    assert addr + 2 + 2 * instr.operands[1] == new_loop


def test_branch_relaxation_over_expanded_code(rw):
    """A conditional branch across many stores lands out of rel7 range
    after expansion and must be relaxed to an inverted branch + rjmp."""
    stores = "\n".join("    st X+, r5" for _ in range(40))
    src = "f:\n    breq skip\n{}\nskip:\n    ret\n".format(stores)
    res = rewrite(rw, src, exports=("f",))
    keys = keys_of(res)
    assert "brbs" in keys or "brbc" in keys
    # execution check: Z flag set -> all stores skipped
    from repro.sim import Machine
    machine = Machine(RUNTIME)
    for w, v in res.program.words.items():
        machine.memory.write_flash_word(w, v)
    machine.call("hb_init", max_cycles=100000)
    machine.memory.sreg = 0b10  # Z set
    machine.core.set_reg_pair(26, 0x0100)  # X somewhere writable-fault
    machine.call(res.exports["f"], max_cycles=100000)
    # skipped all checked stores: no fault recorded
    assert machine.memory.read_data(LAYOUT.fault_code) == 0


def test_behaviour_preserved_semantics(rw):
    """A pure computation rewrites to something computing the same."""
    src = """
    f:
        ldi r24, 0
        ldi r22, 10
    loop:
        add r24, r22
        dec r22
        brne loop
        ret
    """
    from repro.sim import Machine
    plain = Machine(assemble(src))
    plain.call("f")
    expect = plain.result8()

    res = rewrite(rw, src, exports=("f",))
    machine = Machine(RUNTIME)
    for w, v in res.program.words.items():
        machine.memory.write_flash_word(w, v)
    machine.call("hb_init", max_cycles=100000)
    machine.call(res.exports["f"], max_cycles=100000)
    assert machine.result8() == expect


# ---------------------------------------------------------------------
# rejections
# ---------------------------------------------------------------------
@pytest.mark.parametrize("body", [
    "break", "ijmp", "reti", "sleep", "wdr",
])
def test_forbidden_instructions_rejected(rw, body):
    with pytest.raises(RewriteError):
        rewrite(rw, "f:\n    {}\n    ret\n".format(body), exports=("f",))


def test_sp_write_rejected(rw):
    with pytest.raises(RewriteError):
        rewrite(rw, "f:\n    out SPL, r16\n    ret\n", exports=("f",))


def test_protection_register_write_rejected(rw):
    with pytest.raises(RewriteError):
        rewrite(rw, "f:\n    out 0x22, r16\n    ret\n", exports=("f",))


def test_data_words_rejected(rw):
    with pytest.raises(RewriteError):
        rewrite(rw, "f:\n    ret\n.dw 0xFFFF\n", exports=("f",))


def test_call_outside_module_rejected(rw):
    with pytest.raises(RewriteError):
        rewrite(rw, "f:\n    call 0x8000\n    ret\n", exports=("f",))


def test_stats_accounting(rw):
    res = rewrite(rw, """
    f:
        st X, r5
        sts 0x300, r6
        ret
    """, exports=("f",))
    assert res.stats["stores"] == 2
    assert res.stats["rets"] == 1
    assert res.stats["size_out"] > res.stats["size_in"]
    assert res.size_bytes == res.stats["size_out"]


# ---------------------------------------------------------------------
# property: whatever the rewriter emits, the verifier accepts
# ---------------------------------------------------------------------
from hypothesis import given, settings, strategies as st

from repro.sfi.verifier import Verifier

_SAFE_OPS = ["add r16, r17", "sub r18, r19", "eor r20, r21",
             "inc r22", "dec r23", "mov r24, r25", "lsr r16",
             "swap r17", "ldi r24, 7", "cpi r24, 3", "push r16",
             "pop r16", "lds r18, 0x0300", "ld r19, X", "nop"]
_STORE_OPS = ["st X, r5", "st X+, r6", "st -X, r7", "st Y+, r8",
              "st -Y, r9", "std Y+11, r10", "st Z+, r11", "st -Z, r12",
              "std Z+5, r13", "sts 0x0480, r14", "st X, r18"]


@settings(max_examples=40, deadline=None)
@given(st.lists(st.one_of(st.sampled_from(_SAFE_OPS),
                          st.sampled_from(_STORE_OPS)),
                min_size=1, max_size=30))
def test_property_rewriter_output_always_verifies(body):
    """For any module of safe + store instructions, the rewriter either
    rejects the source with a clear error (push/pop traffic it cannot
    keep sound — rule HL016) or emits output that passes the on-node
    verifier (the pipeline's soundness contract)."""
    src = "entry:\n" + "\n".join("    " + op for op in body) + "\n    ret\n"
    rewriter = Rewriter(RUNTIME.symbols, LAYOUT)
    verifier = Verifier(RUNTIME.symbols, LAYOUT)
    depth, balanced = 0, True
    for op in body:
        depth += (op == "push r16") - (op == "pop r16")
        if depth < 0:
            balanced = False
            break
    balanced = balanced and depth == 0
    if not balanced:
        with pytest.raises(RewriteError):
            rewriter.rewrite(assemble(src, "prop"), ORIGIN,
                             exports=("entry",))
        return
    result = rewriter.rewrite(assemble(src, "prop"), ORIGIN,
                              exports=("entry",))
    report = verifier.verify(result.program, result.start, result.end)
    stores = sum(1 for op in body if op in _STORE_OPS)
    assert result.stats["stores"] == stores
    assert report.rets == 1
