"""The assembly runtime: checker, stubs, allocator, services.

These drive the routines directly on the simulator (the rewriter tests
cover the module-side sequences).
"""

import pytest

from repro.sfi.layout import (
    FAULT_MEMMAP,
    FAULT_NONE,
    FAULT_OUTSIDE,
    FAULT_OWNERSHIP,
    FAULT_STACK_BOUND,
    SfiLayout,
)
from repro.sfi.runtime_asm import (
    RUNTIME_ENTRIES,
    STORE_STUBS,
    build_runtime,
    runtime_source,
)
from repro.sim import Machine

LAYOUT = SfiLayout()


@pytest.fixture
def m(runtime_machine):
    return runtime_machine


def fault_code(machine):
    return machine.memory.read_data(LAYOUT.fault_code)


def set_domain(machine, dom):
    machine.memory.write_data(LAYOUT.cur_dom, dom)


# ---------------------------------------------------------------------
# init
# ---------------------------------------------------------------------
def test_init_state(m):
    mem = m.memory
    assert mem.read_data(LAYOUT.cur_dom) == 7
    assert mem.read_word_data(LAYOUT.stack_bound) == 0x0FFF
    assert mem.read_word_data(LAYOUT.ss_ptr) == LAYOUT.safe_stack_base
    assert mem.read_word_data(LAYOUT.freelist) == LAYOUT.heap_start
    # heap free node spans the whole heap
    assert mem.read_word_data(LAYOUT.heap_start) == \
        LAYOUT.heap_end - LAYOUT.heap_start
    assert mem.read_word_data(LAYOUT.heap_start + 2) == 0
    # memory map: heap free (0xFF), safe stack trusted
    assert mem.read_data(LAYOUT.memmap_table) == 0xFF
    cfg = LAYOUT.memmap_config
    ss_block = cfg.block_of(LAYOUT.safe_stack_base)
    code = mem.read_data(LAYOUT.memmap_table + ss_block // 2)
    assert (code >> (4 * (ss_block % 2))) & 0xF == 0xF  # trusted start


# ---------------------------------------------------------------------
# checker
# ---------------------------------------------------------------------
def check(machine, addr):
    machine.core.set_reg_pair(26, addr)
    machine.core.set_reg(18, 0xAA)
    machine.call("hb_st_x")
    return fault_code(machine)


def test_checker_trusted_writes_anywhere(m):
    assert check(m, 0x100) == FAULT_NONE
    assert m.memory.read_data(0x100) == 0xAA
    assert check(m, 0xF80) == FAULT_NONE


def test_checker_module_own_block(m):
    set_domain(m, 0)
    m.call("hb_malloc", 16)
    p = m.result16()
    assert check(m, p) == FAULT_NONE
    assert m.memory.read_data(p) == 0xAA


def test_checker_module_foreign_block(m):
    set_domain(m, 1)
    m.call("hb_malloc", 16)
    p = m.result16()
    set_domain(m, 0)
    assert check(m, p) == FAULT_MEMMAP
    assert m.memory.read_word_data(LAYOUT.fault_addr) == p
    assert m.memory.read_data(p) != 0xAA


def test_checker_free_block_protected(m):
    set_domain(m, 0)
    assert check(m, 0x600) == FAULT_MEMMAP


def test_checker_stack_window(m):
    set_domain(m, 0)
    assert check(m, 0xE00) == FAULT_NONE  # below bound, above prot_top


def test_checker_stack_bound(m):
    set_domain(m, 0)
    m.memory.write_word_data(LAYOUT.stack_bound, 0x0E00)
    assert check(m, 0x0E01) == FAULT_STACK_BOUND


def test_checker_below_region(m):
    set_domain(m, 0)
    assert check(m, 0x100) == FAULT_OUTSIDE


def test_checker_preserves_registers_and_flags(m):
    """The store stubs must be transparent: registers and SREG are
    exactly as a plain ``st`` would leave them."""
    set_domain(m, 0)
    m.call("hb_malloc", 8)
    p = m.result16()
    for r in range(32):
        m.core.set_reg(r, r + 1)
    m.core.set_reg_pair(26, p)
    m.core.set_reg(18, 0x55)
    m.memory.sreg = 0b1010_1010 & 0x7F
    before = [m.core.reg(r) for r in range(26)]
    sreg_before = m.memory.sreg
    m.call("hb_st_x")
    assert [m.core.reg(r) for r in range(26)] == before
    assert m.core.reg_pair(26) == p         # plain st X does not move X
    assert m.memory.sreg == sreg_before


def test_store_stub_post_increment(m):
    set_domain(m, 0)
    m.call("hb_malloc", 8)
    p = m.result16()
    m.core.set_reg_pair(26, p)
    m.core.set_reg(18, 0x11)
    m.call("hb_st_x_plus")
    assert m.core.reg_pair(26) == p + 1
    assert m.memory.read_data(p) == 0x11


def test_store_stub_pre_decrement(m):
    set_domain(m, 0)
    m.call("hb_malloc", 8)
    p = m.result16()
    m.core.set_reg_pair(26, p + 1)
    m.core.set_reg(18, 0x22)
    m.call("hb_st_x_dec")
    assert m.core.reg_pair(26) == p
    assert m.memory.read_data(p) == 0x22


def test_store_stub_y_displacement(m):
    set_domain(m, 0)
    m.call("hb_malloc", 16)
    p = m.result16()
    m.core.set_reg_pair(28, p)          # Y
    m.core.set_reg(18, 0x33)
    m.core.set_reg(19, 5)               # q
    m.call("hb_st_y_q")
    assert m.memory.read_data(p + 5) == 0x33
    assert m.core.reg_pair(28) == p     # Y unchanged


def test_store_stub_z_post_increment(m):
    set_domain(m, 0)
    m.call("hb_malloc", 8)
    p = m.result16()
    m.core.set_reg_pair(30, p)
    m.core.set_reg(18, 0x44)
    m.call("hb_st_z_plus")
    assert m.core.reg_pair(30) == p + 1
    assert m.memory.read_data(p) == 0x44


# ---------------------------------------------------------------------
# allocator
# ---------------------------------------------------------------------
def test_malloc_header_and_alignment(m):
    m.call("hb_malloc", 10)
    p = m.result16()
    assert p % 8 == LAYOUT.heap_header % 8
    hdr = p - LAYOUT.heap_header
    assert m.memory.read_word_data(hdr) == 16      # gross size
    assert m.memory.read_data(hdr + 2) == 7        # owner = trusted
    assert m.memory.read_data(hdr + 3) == 1        # allocated flag


def test_malloc_marks_memmap(m):
    set_domain(m, 4)
    m.call("hb_malloc", 24)
    p = m.result16()
    cfg = LAYOUT.memmap_config
    first = cfg.block_of(p - LAYOUT.heap_header)
    tab = LAYOUT.memmap_table
    def code(block):
        byte = m.memory.read_data(tab + block // 2)
        return (byte >> (4 * (block % 2))) & 0xF
    assert code(first) == (4 << 1) | 1
    assert code(first + 1) == 4 << 1
    assert code(first + 2) == 4 << 1
    assert code(first + 3) == 4 << 1


def test_malloc_distinct_pointers(m):
    ptrs = set()
    for _ in range(10):
        m.call("hb_malloc", 8)
        p = m.result16()
        assert p and p not in ptrs
        ptrs.add(p)


def test_malloc_exhaustion_returns_zero(m):
    got = 0
    for _ in range(300):
        m.call("hb_malloc", 256)
        if m.result16() == 0:
            break
        got += 1
    else:
        pytest.fail("allocator never ran out")
    # ~2.5KiB heap / 264-byte gross allocations
    assert 8 <= got <= 10


def test_free_then_reuse(m):
    m.call("hb_malloc", 32)
    p1 = m.result16()
    m.call("hb_free", p1)
    assert fault_code(m) == FAULT_NONE
    m.call("hb_malloc", 32)
    p2 = m.result16()
    assert p2 == p1  # head of the free list


def test_free_marks_blocks_free(m):
    set_domain(m, 2)
    m.call("hb_malloc", 16)
    p = m.result16()
    m.call("hb_free", p)
    cfg = LAYOUT.memmap_config
    block = cfg.block_of(p - LAYOUT.heap_header)
    byte = m.memory.read_data(LAYOUT.memmap_table + block // 2)
    assert (byte >> (4 * (block % 2))) & 0xF == 0xF


def test_free_by_non_owner_faults(m):
    set_domain(m, 1)
    m.call("hb_malloc", 16)
    p = m.result16()
    set_domain(m, 2)
    m.call("hb_free", p)
    assert fault_code(m) == FAULT_OWNERSHIP
    m.core.halted = False
    m.memory.write_data(LAYOUT.fault_code, 0)
    # trusted can free anything
    set_domain(m, 7)
    m.call("hb_free", p)
    assert fault_code(m) == FAULT_NONE


def test_change_own_rewrites_memmap(m):
    set_domain(m, 1)
    m.call("hb_malloc", 16)
    p = m.result16()
    m.call("hb_change_own", p, ("u8", 3))
    assert m.result8() == 1
    cfg = LAYOUT.memmap_config
    block = cfg.block_of(p - LAYOUT.heap_header)
    byte = m.memory.read_data(LAYOUT.memmap_table + block // 2)
    assert (byte >> (4 * (block % 2))) & 0xF == (3 << 1) | 1
    # header owner updated too
    assert m.memory.read_data(p - LAYOUT.heap_header + 2) == 3


def test_change_own_by_non_owner_faults(m):
    set_domain(m, 1)
    m.call("hb_malloc", 16)
    p = m.result16()
    set_domain(m, 2)
    m.call("hb_change_own", p, ("u8", 2))
    assert fault_code(m) == FAULT_OWNERSHIP


def test_unprotected_variants_skip_memmap(m):
    m.call("malloc_unprot", 16)
    p = m.result16()
    assert p
    cfg = LAYOUT.memmap_config
    block = cfg.block_of(p - LAYOUT.heap_header)
    byte = m.memory.read_data(LAYOUT.memmap_table + block // 2)
    assert (byte >> (4 * (block % 2))) & 0xF == 0xF  # still free-coded
    m.call("chown_unprot", p, ("u8", 5))
    assert m.result8() == 1
    m.call("free_unprot", p)
    m.call("malloc_unprot", 16)
    assert m.result16() == p


def test_chown_unprot_light_check(m):
    set_domain(m, 1)
    m.call("malloc_unprot", 8)
    p = m.result16()
    set_domain(m, 2)
    m.call("chown_unprot", p, ("u8", 2))
    assert m.result8() == 0  # refused, but no fault (light check)


# ---------------------------------------------------------------------
# structure
# ---------------------------------------------------------------------
def test_runtime_entry_symbols_exist(runtime_program):
    for name in RUNTIME_ENTRIES:
        assert name in runtime_program.symbols


def test_store_stub_table_complete():
    # every pointer/mode combination the ISA can produce has a stub
    assert set(STORE_STUBS) == {
        ("X", False, False, False), ("X", True, False, False),
        ("X", False, True, False),
        ("Y", True, False, False), ("Y", False, True, False),
        ("Y", False, False, True),
        ("Z", True, False, False), ("Z", False, True, False),
        ("Z", False, False, True),
    }


def test_runtime_size_reasonable(runtime_program):
    """The library should stay small (paper: 3674 bytes total)."""
    assert 800 < runtime_program.code_bytes < 4096


def test_source_regenerates_deterministically():
    assert runtime_source() == runtime_source()
    p1 = build_runtime()
    p2 = build_runtime()
    assert p1.words == p2.words
