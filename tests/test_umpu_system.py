"""UmpuSystem end-to-end: unmodified modules under hardware protection,
with the retargeted software library."""

import pytest

from repro.asm import assemble
from repro.core.encoding import TRUSTED_DOMAIN
from repro.core.faults import (
    JumpTableFault,
    MemMapFault,
    OwnershipFault,
)
from repro.umpu import UmpuSystem


@pytest.fixture
def system():
    return UmpuSystem()


MODULE = """
.equ KERNEL_MALLOC = {KERNEL_MALLOC}
.equ KERNEL_FREE = {KERNEL_FREE}
.equ KERNEL_CHANGE_OWN = {KERNEL_CHANGE_OWN}

alloc_and_fill:             ; r24:25 = value -> r24:25 = buffer
    push r16
    push r17
    movw r16, r24
    ldi r24, 8
    ldi r25, 0
    call KERNEL_MALLOC
    cp r24, r1
    cpc r25, r1
    breq done
    movw r26, r24
    st X+, r16
    st X, r17
done:
    pop r17
    pop r16
    ret

poke:                       ; r24:25 = address, r22 = value
    movw r26, r24
    st X, r22
    ret

give_away:
    call KERNEL_CHANGE_OWN
    ret

release:
    call KERNEL_FREE
    ret
"""


def load(system, name="mod"):
    src = MODULE.format(**{k: hex(v)
                           for k, v in system.kernel_symbols().items()})
    return system.load_module(
        assemble(src, name), name,
        exports=("alloc_and_fill", "poke", "give_away", "release"))


def test_module_loads_without_rewriting(system):
    mod = load(system)
    assert mod.domain == 0
    # the module image is byte-identical at the load address: raw
    # stores survive (no sandboxing)
    from repro.asm import disassemble
    lines = disassemble(
        [system.machine.memory.read_flash_word(i)
         for i in range(mod.start // 2, mod.end // 2)])
    keys = {l.instr.key for l in lines if l.instr}
    assert "st_x" in keys or "st_xp" in keys  # stores kept as-is


def test_kernel_malloc_attribution(system):
    mod = load(system)
    ptr, cycles = system.call_export("mod", "alloc_and_fill", 0xBEEF)
    assert ptr
    assert system.memmap.owner_of(ptr) == mod.domain
    assert system.machine.read_word(ptr) == 0xBEEF
    assert system.cur_domain == TRUSTED_DOMAIN


def test_hardware_blocks_foreign_store(system):
    load(system)
    victim = system.malloc(8)
    with pytest.raises(MemMapFault):
        system.call_export("mod", "poke", victim, ("u8", 0x66))
    assert system.machine.memory.read_data(victim) == 0
    system.recover()
    # node keeps working after recovery
    ptr, _ = system.call_export("mod", "alloc_and_fill", 1)
    assert ptr


def test_two_modules_isolated(system):
    load(system, "alice")
    load(system, "bob")
    pa, _ = system.call_export("alice", "alloc_and_fill", 0x1111)
    pb, _ = system.call_export("bob", "alloc_and_fill", 0x2222)
    assert system.memmap.owner_of(pa) == 0
    assert system.memmap.owner_of(pb) == 1
    with pytest.raises(MemMapFault):
        system.call_export("bob", "poke", pa, ("u8", 0x66))
    system.recover()
    system.call_export("alice", "poke", pa, ("u8", 0x77))
    assert system.machine.memory.read_data(pa) == 0x77


def test_ownership_transfer(system):
    load(system, "alice")
    load(system, "bob")
    pa, _ = system.call_export("alice", "alloc_and_fill", 1)
    system.call_export("alice", "give_away", pa, ("u8", 1))
    assert system.memmap.owner_of(pa) == 1
    system.call_export("bob", "poke", pa, ("u8", 0x42))


def test_free_ownership_enforced_by_library(system):
    load(system, "alice")
    load(system, "bob")
    pa, _ = system.call_export("alice", "alloc_and_fill", 1)
    with pytest.raises(OwnershipFault):
        system.call_export("bob", "release", pa)
    system.recover()
    system.call_export("alice", "release", pa)
    assert system.memmap.owner_of(pa) == TRUSTED_DOMAIN


def test_module_escape_by_direct_call_caught(system):
    load(system, "alice")
    # bob calls alice's code directly instead of via the jump table
    alice_start = system.modules["alice"].start
    src = "f:\n    call {}\n    ret\n".format(alice_start)
    system.load_module(assemble(src, "bob"), "bob", exports=("f",))
    with pytest.raises(JumpTableFault):
        system.call_export("bob", "f")


def test_module_to_module_via_jump_table(system):
    load(system, "alice")
    syms = system.kernel_symbols()
    src = """
    f:
        ldi r24, 0x34
        ldi r25, 0x12
        call {JT_ALICE_ALLOC_AND_FILL}
        ret
    """.format(**{k: hex(v) for k, v in syms.items()})
    system.load_module(assemble(src, "carol"), "carol", exports=("f",))
    ptr, _ = system.call_export("carol", "f")
    assert ptr
    assert system.memmap.owner_of(ptr) == 0  # alice allocated it


def test_internal_jmp_call_relocated(system):
    """Modules with internal absolute calls work after placement."""
    src = """
    entry:
        call helper
        ret
    helper:
        ldi r24, 0x55
        ret
    """
    system.load_module(assemble(src, "rel"), "rel", exports=("entry",))
    result, _ = system.call_export("rel", "entry")
    assert result & 0xFF == 0x55


def test_umpu_cheaper_than_sfi_same_workload(system):
    """The co-design claim: identical module logic costs far fewer
    cycles under hardware checks than under binary rewriting."""
    load(system)
    _ptr, umpu_cycles = system.call_export("mod", "alloc_and_fill", 1)

    from repro.sfi import SfiSystem
    sfi = SfiSystem()
    src = MODULE.format(**{k: hex(v)
                           for k, v in sfi.kernel_symbols().items()})
    sfi.load_module(assemble(src, "mod"), "mod",
                    exports=("alloc_and_fill", "poke", "give_away",
                             "release"))
    _ptr, sfi_cycles = sfi.call_export("mod", "alloc_and_fill", 1)
    assert umpu_cycles < sfi_cycles / 2


def test_reload_at_reused_base_executes_fresh_code(system):
    """Regression: unloading a module and loading a different one into
    the same flash window must not execute stale cached decodes of the
    old module's instructions."""
    base = system._next_load
    src_a = "f:\n    ldi r24, 0x11\n    ldi r25, 0\n    ret\n"
    system.load_module(assemble(src_a, "a"), "a", exports=("f",))
    val, _ = system.call_export("a", "f")
    assert val == 0x11
    system.unload_module("a")
    system._next_load = base          # loader reuses the freed window
    src_b = "f:\n    ldi r24, 0x22\n    ldi r25, 0\n    ret\n"
    system.load_module(assemble(src_b, "b"), "b", exports=("f",))
    val, _ = system.call_export("b", "f")
    assert val == 0x22                # fresh decode, not module a's


def test_relocation_patch_invalidates_decode_cache(system):
    """Regression: _relocate_absolute patches flash words in place; a
    decode of the pre-relocation word must never survive.  Prime the
    cache over the raw load image, then relocate and call."""
    src = """
    entry:
        call helper
        ret
    helper:
        ldi r24, 0x42
        ldi r25, 0
        ret
    """
    program = assemble(src, "rel2")
    base_word = system._next_load // 2
    core = system.machine.core
    # simulate a core that has speculatively decoded the raw image
    # (absolute call still targeting origin 0)
    lo, _hi = program.extent()
    for word_addr, value in program.words.items():
        system.machine.memory.write_flash_word(
            base_word + (word_addr - lo), value)
    pc, core.pc = core.pc, base_word
    core._fetch()                     # caches the unrelocated call
    core.pc = pc
    system.load_module(program, "rel2", exports=("entry",))
    val, _ = system.call_export("rel2", "entry")
    assert val == 0x42
