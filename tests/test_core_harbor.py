"""HarborSystem facade scenarios (behavioural golden system)."""

import pytest

from repro.core import (
    HarborSystem,
    MemMapFault,
    StackBoundFault,
    TRUSTED_DOMAIN,
    UntrustedAccessFault,
)


@pytest.fixture
def system():
    return HarborSystem()


def test_default_layout(system):
    cfg = system.memmap.config
    assert cfg.prot_bottom == 0x200
    assert cfg.block_size == 8
    assert system.heap.start == 0x200
    assert system.heap.end == 0xC00
    assert system.safe_stack.base == 0xC00
    # safe stack region is trusted-owned from the start
    assert system.memmap.owner_of(0xC00) == TRUSTED_DOMAIN


def test_malloc_store_load_cycle(system):
    d = system.create_domain("app")
    p = system.malloc(16, d)
    system.store(p, 0xAB, d)
    assert system.load(p) == 0xAB


def test_cross_domain_write_blocked(system):
    a = system.create_domain("a")
    b = system.create_domain("b")
    pa = system.malloc(8, a)
    with pytest.raises(MemMapFault):
        system.store(pa, 1, b)
    system.store(pa, 1, a)


def test_as_domain_context(system):
    d = system.create_domain()
    p = system.malloc(8, d)
    with system.as_domain(d):
        assert system.cur_domain == d.did
        system.store(p, 9)
    assert system.cur_domain == TRUSTED_DOMAIN


def test_trusted_default_can_write_anywhere(system):
    system.store(0x100, 1)
    system.store(0xF00, 1)


def test_untrusted_cannot_touch_trusted_globals(system):
    d = system.create_domain()
    with pytest.raises(UntrustedAccessFault):
        system.store(0x100, 1, d)


def test_store_unchecked_bypasses(system):
    system.create_domain()
    system.store_unchecked(0x100, 0x55)  # no fault, no checks
    assert system.load(0x100) == 0x55


def test_cross_domain_call_swaps_protection_state(system):
    d = system.create_domain()
    entry = system.jump_table.entry_addr(d.did, 0)
    system.sp = 0xE00
    callee = system.cross_domain_call(entry)
    assert callee == d.did
    assert system.cur_domain == d.did
    assert system.context.stack_bound == 0xE00
    # while in the domain, writes above the bound fault
    with pytest.raises(StackBoundFault):
        system.store(0xE01, 1)
    # the domain's stack window works
    system.store(0xD80, 1)
    frame = system.cross_domain_return()
    assert frame.prev_domain == TRUSTED_DOMAIN
    assert system.cur_domain == TRUSTED_DOMAIN


def test_free_and_change_own_via_facade(system):
    a = system.create_domain()
    b = system.create_domain()
    p = system.malloc(32, a)
    system.change_own(p, b, a)
    assert system.memmap.owner_of(p) == b.did
    system.free(p, b)
    assert system.memmap.owner_of(p) == TRUSTED_DOMAIN


def test_domain_layout_reports_fragmentation(system):
    """Figure 2: a domain's memory is fragmented but logically one
    protection domain."""
    a = system.create_domain("a")
    b = system.create_domain("b")
    pa1 = system.malloc(8, a)
    pb = system.malloc(8, b)
    pa2 = system.malloc(8, a)
    segs = {(s, o) for s, _n, o in system.domain_layout()}
    assert (pa1, a.did) in segs
    assert (pb, b.did) in segs
    assert (pa2, a.did) in segs
    # a's two segments are not adjacent (b sits in between)
    assert pa2 - pa1 == 16


def test_two_domain_mode():
    system = HarborSystem(mode="two")
    d = system.create_domain()
    assert d.did == 0
    with pytest.raises(ValueError):
        system.create_domain()  # only one user domain in 2-bit mode
    p = system.malloc(8, d)
    system.store(p, 5, d)
    assert system.memmap.config.table_bytes == \
        (system.memmap.config.nblocks + 3) // 4
