"""On-node verifier: accepts rewriter output, rejects everything unsafe.

The key property (the paper's trust argument): feed the verifier
*unsandboxed* binaries and hand-crafted attacks — it must reject every
one, without needing to know how they were produced.
"""

import pytest

from repro.asm import assemble
from repro.sfi.layout import SfiLayout
from repro.sfi.rewriter import Rewriter
from repro.sfi.runtime_asm import build_runtime
from repro.sfi.verifier import Verifier, VerifyError

LAYOUT = SfiLayout()
RUNTIME = build_runtime(LAYOUT)
ORIGIN = LAYOUT.jt_end


@pytest.fixture
def verifier():
    return Verifier(RUNTIME.symbols, LAYOUT)


@pytest.fixture
def rewriter():
    return Rewriter(RUNTIME.symbols, LAYOUT)


def verify_src(verifier, src, origin=ORIGIN):
    program = assemble(".org {}\n".format(origin) + src, "attack")
    lo, hi = program.extent()
    return verifier.verify(program, lo * 2, (hi + 1) * 2)


# ---------------------------------------------------------------------
# rewriter output is accepted
# ---------------------------------------------------------------------
GOOD_MODULE = """
entry:
    push r16
    ldi r16, 4
    movw r26, r24
loop:
    st X+, r16
    dec r16
    brne loop
    call helper
    pop r16
    ret
helper:
    sts 0x0400, r16
    ret
"""


def test_rewritten_module_verifies(verifier, rewriter):
    res = rewriter.rewrite(assemble(GOOD_MODULE, "mod"), ORIGIN,
                           exports=("entry",))
    report = verifier.verify(res.program, res.start, res.end)
    assert report.instructions > 10
    assert report.rets == 2
    assert report.calls_to_runtime >= 4  # prologues, stores, epilogues
    assert report.internal_calls == 1


def test_verifier_independent_of_rewriter(verifier):
    """Hand-written code following the rules also verifies — the
    verifier checks properties, not provenance."""
    stub = RUNTIME.symbol("hb_restore_ret")
    save = RUNTIME.symbol("hb_save_ret")
    src = """
        call {save:#x}
        nop
        call {stub:#x}
        ret
    """.format(save=save, stub=stub)
    report = verify_src(verifier, src)
    assert report.rets == 1


# ---------------------------------------------------------------------
# rejections
# ---------------------------------------------------------------------
@pytest.mark.parametrize("body,fragment", [
    ("    st X, r5\n", "forbidden"),
    ("    st Y+, r5\n", "forbidden"),
    ("    std Z+3, r5\n", "forbidden"),
    ("    sts 0x0400, r5\n", "forbidden"),
    ("    icall\n", "forbidden"),
    ("    ijmp\n", "forbidden"),
    ("    break\n", "forbidden"),
    ("    reti\n", "forbidden"),
    ("    out SPL, r16\n", "protected I/O"),
    ("    out SPH, r16\n", "protected I/O"),
    ("    out SREG, r16\n", "protected I/O"),
    ("    out 0x22, r16\n", "protection register"),
    ("    out 0x11, r16\n", "unapproved I/O"),
    ("    sbi 0x11, 2\n", "unapproved I/O"),
    ("    call 0x0100\n", "escapes"),       # into the trusted runtime
    ("    rjmp 0x1f00\n", "escapes"),
    ("    jmp 0x8000\n", "escapes"),
    ("    breq 0x1fc0\n", "escapes"),
    ("    ret\n", "not preceded"),
])
def test_unsafe_code_rejected(verifier, body, fragment):
    with pytest.raises(VerifyError) as err:
        verify_src(verifier, body + "    nop\n")
    assert fragment in str(err.value)


def test_direct_jump_table_call_rejected(verifier):
    """Cross-domain transfers must go through hb_xdom_call, never call
    the jump table directly (that would skip domain tracking)."""
    with pytest.raises(VerifyError):
        verify_src(verifier, "    call {}\n    nop\n".format(LAYOUT.jt_base))


def test_undecodable_word_rejected(verifier):
    program = assemble(".org {}\n    nop\n.dw 0xFFFF\n".format(ORIGIN))
    lo, hi = program.extent()
    with pytest.raises(VerifyError) as err:
        verifier.verify(program, lo * 2, (hi + 1) * 2)
    assert "undecodable" in str(err.value)


def test_branch_into_mid_instruction_rejected(verifier):
    """Jumping into the second word of a 32-bit instruction would
    execute a phantom opcode — the boundary check catches it."""
    save = RUNTIME.symbol("hb_save_ret")
    # `call` is 2 words; branch to its second word
    src = """
    a:
        rjmp a + 4
        call {save:#x}
        nop
    """.format(save=save)
    with pytest.raises(VerifyError) as err:
        verify_src(verifier, src)
    assert "middle of an instruction" in str(err.value)


def test_ret_after_other_runtime_call_rejected(verifier):
    save = RUNTIME.symbol("hb_save_ret")
    with pytest.raises(VerifyError) as err:
        verify_src(verifier, "    call {:#x}\n    ret\n".format(save))
    assert "not preceded" in str(err.value)


def test_allowed_io_whitelist():
    v = Verifier(RUNTIME.symbols, LAYOUT, allowed_io=(0x18,))
    program = assemble(".org {}\n    out 0x18, r16\n    nop\n".format(ORIGIN))
    lo, hi = program.extent()
    v.verify(program, lo * 2, (hi + 1) * 2)   # passes
    with pytest.raises(VerifyError):
        program = assemble(".org {}\n    out 0x19, r16\n".format(ORIGIN))
        lo, hi = program.extent()
        v.verify(program, lo * 2, (hi + 1) * 2)


def test_loads_and_pushes_allowed(verifier):
    """Reads and stack pushes are safe (bound-checked at run time)."""
    verify_src(verifier, """
        push r16
        lds r16, 0x0100
        ld r17, X+
        ldd r18, Y+3
        in r19, 0x05
        pop r16
        nop
    """)


def test_report_boundaries(verifier):
    report = verify_src(verifier, "    nop\n    jmp {}\n".format(ORIGIN))
    assert report.start == ORIGIN
    assert ORIGIN in report.boundaries
    assert ORIGIN + 2 in report.boundaries
